//! The figure reproductions: affinity-score distributions (Fig 2), the
//! class-sorted affinity heatmap (Fig 5), the dev-set theory curve (Fig 7),
//! the dev-set size sweep (Fig 8) and the affinity-count sweep (Fig 9).

use super::report::Table;
use super::TrialContext;
use goggles_core::mapping::{apply_mapping, map_clusters_via_dev_set};
use goggles_core::{theory, HierarchicalModel, HierarchicalOptions};
use goggles_datasets::DevSet;
use goggles_tensor::histogram;

/// Figure 2: same-class vs cross-class affinity-score histograms for the
/// best, median and worst affinity function (ranked by AUC), on one dataset.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// (function flat index, AUC) for best / median / worst.
    pub selected: Vec<(usize, f64)>,
    /// Histogram bins (shared edges over [lo, hi]).
    pub bins: usize,
    /// Low edge.
    pub lo: f64,
    /// High edge.
    pub hi: f64,
    /// Per selected function: (same-class histogram, cross-class histogram).
    pub histograms: Vec<(Vec<usize>, Vec<usize>)>,
}

/// Compute Figure 2 on a built trial context.
pub fn figure2(ctx: &TrialContext, bins: usize) -> Figure2 {
    let truth = ctx.train_truth();
    let mut ranked: Vec<(usize, f64)> = (0..ctx.affinity.alpha)
        .map(|f| (f, ctx.affinity.score_distribution(f, &truth).auc))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let picks =
        [0usize, ranked.len() / 2, ranked.len() - 1].map(|i| ranked[i.min(ranked.len() - 1)]);
    let (lo, hi) = (-1.0, 1.0);
    let histograms = picks
        .iter()
        .map(|&(f, _)| {
            let dist = ctx.affinity.score_distribution(f, &truth);
            (histogram(&dist.same_class, lo, hi, bins), histogram(&dist.cross_class, lo, hi, bins))
        })
        .collect();
    Figure2 { selected: picks.to_vec(), bins, lo, hi, histograms }
}

impl Figure2 {
    /// Render as a table: one row per bin, columns per selected function.
    pub fn to_table(&self) -> Table {
        let mut headers = vec!["bin".to_string()];
        for (i, (f, auc)) in self.selected.iter().enumerate() {
            let tag = ["best", "median", "worst"][i.min(2)];
            headers.push(format!("{tag} f{f} same (AUC {auc:.2})"));
            headers.push(format!("{tag} f{f} cross"));
        }
        let mut t = Table::new(
            "Figure 2: affinity score distributions (same vs cross class)",
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let w = (self.hi - self.lo) / self.bins as f64;
        for b in 0..self.bins {
            let mut row =
                vec![format!("{:.2}..{:.2}", self.lo + b as f64 * w, self.lo + (b + 1) as f64 * w)];
            for (same, cross) in &self.histograms {
                row.push(same[b].to_string());
                row.push(cross[b].to_string());
            }
            t.push_row(row);
        }
        t
    }
}

/// Figure 5: class-sorted block means of the same three functions.
pub fn figure5(ctx: &TrialContext) -> Table {
    let truth = ctx.train_truth();
    let fig2 = figure2(ctx, 10);
    let mut t = Table::new(
        "Figure 5: affinity matrix class-block means (rows/cols sorted by class)",
        &["function", "AUC", "mean(0,0)", "mean(0,1)", "mean(1,0)", "mean(1,1)"],
    );
    for &(f, auc) in &fig2.selected {
        let blocks = ctx.affinity.sorted_block_view(f, &truth, 2);
        t.push_row(vec![
            format!("f{f}"),
            format!("{auc:.3}"),
            format!("{:.3}", blocks[0][0]),
            format!("{:.3}", blocks[0][1]),
            format!("{:.3}", blocks[1][0]),
            format!("{:.3}", blocks[1][1]),
        ]);
    }
    t
}

/// Figure 7: theoretical P(correct mapping) vs dev-set size per class, for
/// several accuracy levels η (K = 2 as in the paper's plot).
pub fn figure7(etas: &[f64], max_d: usize) -> Table {
    let mut headers = vec!["d (per class)".to_string(), "m (total)".to_string()];
    headers.extend(etas.iter().map(|e| format!("η={e}")));
    let mut t = Table::new(
        "Figure 7: size of the development set needed (Theorem 1 lower bound, K=2)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for d in 1..=max_d {
        let mut row = vec![d.to_string(), (2 * d).to_string()];
        for &eta in etas {
            row.push(format!("{:.4}", theory::p_mapping_correct(eta, 2, d)));
        }
        t.push_row(row);
    }
    t
}

/// Figure 8: labeling accuracy vs dev-set size. The hierarchical model is
/// fit **once** per trial (it is unsupervised); only the cluster→class
/// mapping consumes the dev set, so the sweep rebinds the mapping per size.
/// Size 0 reports the expected accuracy under a uniformly random mapping,
/// matching the "no dev set" regime.
pub fn figure8(ctx: &TrialContext, sizes_per_class: &[usize], seed: u64) -> Vec<(usize, f64)> {
    // Reuse the pipeline's own inference configuration so the sweep varies
    // ONLY the dev-set size (the unsupervised fit is shared across sizes).
    let cfg = ctx.goggles.config();
    let opts = HierarchicalOptions {
        num_classes: ctx.dataset.num_classes,
        em: cfg.em,
        one_hot: cfg.one_hot,
        threads: cfg.threads,
        seed: cfg.seed,
    };
    let model = HierarchicalModel::fit(&ctx.affinity, &opts).expect("hierarchical fit");
    let _ = seed; // dev resampling below is seeded separately
    let max_size = sizes_per_class.iter().copied().max().unwrap_or(0);
    let max_dev = if max_size > 0 {
        let dev_global = ctx.dataset.sample_dev_set(
            max_size.min(ctx.dataset.train_indices.len() / ctx.dataset.num_classes / 2).max(1),
            seed,
        );
        DevSet {
            indices: dev_global
                .indices
                .iter()
                .map(|&i| {
                    ctx.dataset
                        .train_indices
                        .iter()
                        .position(|&t| t == i)
                        .expect("dev in train block")
                })
                .collect(),
            labels: dev_global.labels.clone(),
        }
    } else {
        DevSet::empty()
    };
    let truth = ctx.train_truth();
    sizes_per_class
        .iter()
        .map(|&per_class| {
            if per_class == 0 {
                // Expected accuracy over all K! mappings, uniformly random.
                let k = ctx.dataset.num_classes;
                let perms = permutations(k);
                let mut acc = 0.0;
                for g in &perms {
                    let mapped = apply_mapping(&model.responsibilities, g);
                    let hard = goggles_models::hard_labels(&mapped);
                    acc += non_dev_accuracy(&hard, &truth, &[]);
                }
                return (0, acc / perms.len() as f64);
            }
            let dev = max_dev.truncated(per_class, ctx.dataset.num_classes);
            let g = map_clusters_via_dev_set(&model.responsibilities, &dev);
            let mapped = apply_mapping(&model.responsibilities, &g);
            let hard = goggles_models::hard_labels(&mapped);
            (per_class, non_dev_accuracy(&hard, &truth, &dev.indices))
        })
        .collect()
}

/// Figure 9: labeling accuracy vs number of affinity functions. The first
/// `count` functions of the library (layer-major order) are kept and the
/// hierarchical model is refit per count.
pub fn figure9(ctx: &TrialContext, counts: &[usize], _seed: u64) -> Vec<(usize, f64)> {
    let truth = ctx.train_truth();
    counts
        .iter()
        .map(|&count| {
            let keep: Vec<usize> = (0..count.clamp(1, ctx.affinity.alpha)).collect();
            let restricted = ctx.affinity.restrict_functions(&keep);
            let (labels, _, _) = ctx
                .goggles
                .infer_from_affinity(&restricted, &ctx.dev_rows)
                .expect("restricted inference");
            (keep.len(), non_dev_accuracy(&labels.hard_labels(), &truth, &ctx.dev_rows.indices))
        })
        .collect()
}

/// Accuracy over rows not in `exclude`.
fn non_dev_accuracy(hard: &[usize], truth: &[usize], exclude: &[usize]) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, (&p, &t)) in hard.iter().zip(truth).enumerate() {
        if exclude.contains(&i) {
            continue;
        }
        total += 1;
        if p == t {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// All permutations of `0..k` (k is tiny: the number of classes).
fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut perm: Vec<usize> = (0..k).collect();
    heap_permute(&mut perm, k, &mut out);
    out
}

fn heap_permute(perm: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(perm.clone());
        return;
    }
    for i in 0..k {
        heap_permute(perm, k - 1, out);
        if k.is_multiple_of(2) {
            perm.swap(i, k - 1);
        } else {
            perm.swap(0, k - 1);
        }
    }
}

/// Render a sweep as a two-column table.
pub fn sweep_table(title: &str, x_name: &str, series: &[(usize, f64)]) -> Table {
    let mut t = Table::new(title, &[x_name, "accuracy (%)"]);
    for &(x, acc) in series {
        t.push_row(vec![x.to_string(), format!("{:.2}", 100.0 * acc)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::RunParams;

    fn ctx() -> TrialContext {
        let params = RunParams {
            n_train_per_class: 8,
            n_test_per_class: 2,
            image_size: 32,
            pairs: 1,
            trials: 1,
            dev_per_class: 2,
            top_z: 2,
            tiny_backbone: true,
        };
        let task = params.tasks_for_trial(0)[0]; // CUB
        TrialContext::build(&params, &task, 0)
    }

    #[test]
    fn figure2_ranks_best_above_worst() {
        let c = ctx();
        let fig = figure2(&c, 10);
        assert_eq!(fig.selected.len(), 3);
        assert!(fig.selected[0].1 >= fig.selected[1].1);
        assert!(fig.selected[1].1 >= fig.selected[2].1);
        // histogram mass equals pair count
        let n = c.dataset.train_indices.len();
        let same_class_pairs: usize = fig.histograms[0].0.iter().sum();
        let cross_pairs: usize = fig.histograms[0].1.iter().sum();
        assert_eq!(same_class_pairs + cross_pairs, n * (n - 1));
        let table = fig.to_table();
        assert_eq!(table.rows.len(), 10);
    }

    #[test]
    fn figure5_block_means_in_range() {
        let c = ctx();
        let t = figure5(&c);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn figure7_rows_and_monotonicity() {
        let t = figure7(&[0.7, 0.9], 10);
        assert_eq!(t.rows.len(), 10);
        // η=0.9 column should dominate η=0.7 at d=10
        let last = &t.rows[9];
        let p07: f64 = last[2].parse().unwrap();
        let p09: f64 = last[3].parse().unwrap();
        assert!(p09 > p07);
    }

    #[test]
    fn figure8_size_zero_is_chance_and_grows() {
        let c = ctx();
        let series = figure8(&c, &[0, 2, 4], 1);
        assert_eq!(series.len(), 3);
        // random-mapping expectation for K=2 is exactly 0.5
        assert!((series[0].1 - 0.5).abs() < 1e-9, "size-0 accuracy {}", series[0].1);
        assert!(series[2].1 >= series[0].1 - 0.05);
    }

    #[test]
    fn figure9_counts_clamped_to_alpha() {
        let c = ctx();
        let series = figure9(&c, &[1, 5, 100], 1);
        assert_eq!(series[2].0, c.affinity.alpha);
        for &(_, acc) in &series {
            assert!((0.0..=1.0).contains(&acc));
        }
    }

    #[test]
    fn permutations_count_is_factorial() {
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(1), vec![vec![0]]);
    }
}

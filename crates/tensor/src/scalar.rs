//! Floating-point scalar abstraction so the same matrix kernels serve both
//! the f32 image/CNN path and the f64 probabilistic-inference path.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating point element type usable inside [`crate::Matrix`].
///
/// Implemented for `f32` and `f64`. The trait deliberately exposes only the
/// operations the numeric kernels in this workspace need, so adding a new
/// scalar (e.g. a fixed-point type for testing) stays cheap.
// goggles-lint: allow(dead-pub): bound on the pub Matrix/stats generics: external callers instantiate at f32/f64 without naming it
pub trait Scalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64` (used for literals and accumulators).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Power with an arbitrary exponent.
    fn powf(self, e: Self) -> Self;
    /// `true` when the value is finite (not NaN / infinity).
    fn is_finite(self) -> bool;
    /// IEEE maximum of two values (NaN-propagating like `f64::max`).
    fn maximum(self, other: Self) -> Self;
    /// IEEE minimum of two values.
    fn minimum(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline(always)]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline(always)]
            fn powf(self, e: Self) -> Self {
                <$t>::powf(self, e)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn maximum(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn minimum(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: f64) -> f64 {
        T::from_f64(v).to_f64()
    }

    #[test]
    fn constants_are_identities() {
        assert_eq!(f32::ZERO + f32::ONE, 1.0f32);
        assert_eq!(f64::ZERO + f64::ONE, 1.0f64);
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, -1.5, 3.25, 1e300] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_preserves_representable_values() {
        for v in [0.0, -1.5, 3.25, 1024.0] {
            assert_eq!(roundtrip::<f32>(v), v);
        }
    }

    #[test]
    #[allow(unstable_name_collisions)]
    fn maximum_minimum_match_std() {
        assert_eq!(2.0f64.maximum(3.0), 3.0);
        assert_eq!(2.0f64.minimum(3.0), 2.0);
        assert_eq!((-2.0f32).maximum(1.0), 1.0);
    }

    #[test]
    fn is_finite_flags_nan_and_inf() {
        assert!(!f64::NAN.is_finite());
        assert!(!f32::INFINITY.is_finite());
        assert!(1.0f64.is_finite());
    }
}

//! Structured, leveled logging to stderr.
//!
//! One process-global sink with an atomic level filter and an output mode:
//! human-readable text (default) or JSONL, one event per line, with a
//! microsecond UNIX timestamp, level, component, message, and typed
//! key/value fields. The hot path for a *disabled* level is a single
//! relaxed atomic load.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a `--log-level` argument.
    pub fn parse(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level '{other}' (expected error|warn|info|debug)")),
        }
    }
}

/// A typed field value so JSONL output keeps numbers as numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Str(if v { "true" } else { "false" }.to_string())
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Set the minimum severity that will be emitted.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

// goggles-lint: allow(dead-pub): log-level introspection, pairs with the exported Level enum; exercised only by unit tests
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Switch between JSONL (`true`) and human-readable text (`false`).
pub fn set_json(json: bool) {
    JSON.store(json, Ordering::Relaxed);
}

pub fn json() -> bool {
    JSON.load(Ordering::Relaxed)
}

/// Whether an event at `level` would currently be emitted.
#[inline]
pub(crate) fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

/// Emit one structured event to stderr (a no-op when the level is filtered).
pub(crate) fn event(level: Level, component: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(level) {
        return;
    }
    let ts_us =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0);
    let line = if json() {
        format_json(ts_us, level, component, msg, fields)
    } else {
        format_text(ts_us, level, component, msg, fields)
    };
    eprintln!("{line}");
}

/// Convenience wrappers for the common severities.
pub fn error(component: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Error, component, msg, fields);
}
pub fn warn(component: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Warn, component, msg, fields);
}
pub fn info(component: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Info, component, msg, fields);
}
// goggles-lint: allow(dead-pub): log-emitter sibling of the used info/warn macros; exercised only by unit tests
pub fn debug(component: &str, msg: &str, fields: &[(&str, Value)]) {
    event(Level::Debug, component, msg, fields);
}

/// JSONL form: `{"ts_us":...,"level":"warn","component":"serve","msg":"...",...}`.
pub(crate) fn format_json(
    ts_us: u64,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, Value)],
) -> String {
    let mut out = String::with_capacity(96 + msg.len());
    let _ = write!(
        out,
        "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"component\":\"{}\",\"msg\":\"{}\"",
        level.as_str(),
        escape_json(component),
        escape_json(msg)
    );
    for (key, value) in fields {
        let _ = write!(out, ",\"{}\":", escape_json(key));
        match value {
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Inf literals; stringify them.
            Value::F64(v) => {
                let _ = write!(out, "\"{v}\"");
            }
            Value::Str(v) => {
                let _ = write!(out, "\"{}\"", escape_json(v));
            }
        }
    }
    out.push('}');
    out
}

/// Text form: `[1700000000.123456] WARN serve: message key=value`.
pub(crate) fn format_text(
    ts_us: u64,
    level: Level,
    component: &str,
    msg: &str,
    fields: &[(&str, Value)],
) -> String {
    let mut out = String::with_capacity(64 + msg.len());
    let _ = write!(
        out,
        "[{}.{:06}] {} {component}: {msg}",
        ts_us / 1_000_000,
        ts_us % 1_000_000,
        level.as_str().to_ascii_uppercase(),
    );
    for (key, value) in fields {
        match value {
            Value::U64(v) => {
                let _ = write!(out, " {key}={v}");
            }
            Value::I64(v) => {
                let _ = write!(out, " {key}={v}");
            }
            Value::F64(v) => {
                let _ = write!(out, " {key}={v}");
            }
            Value::Str(v) => {
                let _ = write!(out, " {key}={v:?}");
            }
        }
    }
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("WARN").unwrap(), Level::Warn);
        assert_eq!(Level::parse("debug").unwrap(), Level::Debug);
        assert!(Level::parse("loud").is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn json_events_are_valid_shapes() {
        let line = format_json(
            42,
            Level::Warn,
            "serve",
            "salvaging \"bad\" batch",
            &[
                ("batch", Value::U64(7)),
                ("version", Value::U64(3)),
                ("err", Value::Str("panic\nmsg".to_string())),
                ("load", Value::F64(0.5)),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_us\":42,\"level\":\"warn\",\"component\":\"serve\",\
             \"msg\":\"salvaging \\\"bad\\\" batch\",\"batch\":7,\"version\":3,\
             \"err\":\"panic\\nmsg\",\"load\":0.5}"
        );
        // Balanced braces and quotes (cheap well-formedness check).
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.chars().filter(|&c| c == '"').count() % 2, 0);
    }

    #[test]
    fn nonfinite_floats_are_stringified() {
        let line = format_json(0, Level::Info, "c", "m", &[("x", Value::F64(f64::NAN))]);
        assert!(line.contains("\"x\":\"NaN\""));
    }

    #[test]
    fn text_events_carry_fields() {
        let line = format_text(
            1_700_000_000_123_456,
            Level::Info,
            "served",
            "listening",
            &[("addr", Value::Str("127.0.0.1:9".to_string()))],
        );
        assert_eq!(line, "[1700000000.123456] INFO served: listening addr=\"127.0.0.1:9\"");
    }

    #[test]
    fn control_characters_escape_to_unicode() {
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
    }
}

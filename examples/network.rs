//! Network serving demo: fit GOGGLES once, put a wire-protocol TCP front
//! on the micro-batching service, and label held-out images from a
//! **remote client** — then hot-reload a compressed v2 snapshot *over the
//! wire* without stopping the server.
//!
//! ```text
//! cargo run --release --example network
//! ```
//!
//! The demo exercises the transport-agnostic `Labeler` trait: the same
//! `label_images` function runs against the in-process `FittedLabeler` and
//! against the `RemoteLabeler` on the other side of a TCP connection, and
//! the answers must be **bit-identical** — the wire carries exact `f64`
//! probabilities.

use goggles::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Written once against the trait; works for every transport.
fn label_images(labeler: &dyn Labeler, images: &[&Image]) -> Vec<LabelResponse> {
    labeler.label_all(images).expect("labeling failed")
}

fn main() {
    let seed = 7u64;
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 12, 10, seed);
    task.image_size = 32;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(4, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };

    // ---- 1. fit once, label in-process (the reference answers) ---------
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).expect("fitting failed");
    let held_out = ds.test_images();
    let reference = label_images(&labeler, &held_out);

    // ---- 2. spawn the server: micro-batcher + TCP wire front ----------
    let service = Arc::new(LabelService::spawn(
        labeler.clone(),
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(2),
            ..ServeConfig::default()
        },
    ));
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind failed");
    println!("server listening on {}", server.local_addr());

    // ---- 3. remote client: same trait, one TCP connection -------------
    let client = RemoteLabeler::connect(server.local_addr()).expect("connect failed");
    let t0 = Instant::now();
    let remote = label_images(&client, &held_out);
    let elapsed = t0.elapsed();
    assert_eq!(remote.len(), reference.len());
    for (i, (r, e)) in remote.iter().zip(&reference).enumerate() {
        assert_eq!(r.label, e.label, "image {i}");
        assert_eq!(r.probs, e.probs, "image {i}: remote answers must be bit-identical");
        assert_eq!(r.version, 1, "image {i} served by version 1");
    }
    println!(
        "remote-labeled {} images in {:.2?} ({:.0} img/s, pipelined) — all bit-identical",
        remote.len(),
        elapsed,
        remote.len() as f64 / elapsed.as_secs_f64(),
    );

    // ---- 4. ticket lifecycle: non-blocking submission + deadline -------
    let mut ticket = client.submit(Arc::new(held_out[0].clone())).expect("submit failed");
    let outcome = loop {
        if let Some(outcome) = ticket.wait_timeout(Duration::from_millis(50)) {
            break outcome;
        }
        println!("…still in flight");
    };
    println!("ticket resolved: class {}", outcome.expect("labeling failed").label);
    let expired = client
        .submit_with_deadline(
            Arc::new(held_out[0].clone()),
            Some(Instant::now() - Duration::from_millis(1)),
        )
        .expect("submit failed")
        .wait();
    assert!(matches!(expired, Err(goggles::serve::ServeError::Deadline)));
    println!("expired deadline correctly answered with ServeError::Deadline");

    // ---- 5. remote hot-reload: swap a v2 snapshot behind live traffic --
    let snap_path = std::env::temp_dir().join("goggles_network_demo_v2.ggl");
    std::fs::write(&snap_path, labeler.save_v2(true)).expect("write v2 snapshot");
    let version =
        client.reload(snap_path.to_str().expect("utf-8 temp path")).expect("remote reload failed");
    let post_swap = client.label(held_out[0]).expect("post-swap label failed");
    assert_eq!(post_swap.version, version, "next answer serves the reloaded version");
    println!("hot-reloaded over the wire as version {version}");

    // ---- 6. remote stats + clean shutdown ------------------------------
    let remote_stats = client.stats().expect("stats failed");
    println!(
        "server stats: {} requests, mean batch {:.1}, p50 {} µs, p99 {} µs (version {})",
        remote_stats.stats.requests,
        remote_stats.stats.mean_batch_size(),
        remote_stats.stats.p50_latency_us(),
        remote_stats.stats.p99_latency_us(),
        remote_stats.version,
    );
    client.shutdown_server().expect("shutdown op failed");
    drop(client);
    server.wait();
    std::fs::remove_file(&snap_path).ok();
    println!("OK: server drained and shut down cleanly.");
}

//! Property tests over the snapshot codec and container: truncated
//! prefixes, bit-flipped bytes and oversized length fields must always
//! come back as `Err` — never a panic, never an unbounded allocation — for
//! both the v1 and v2 snapshot formats.

use goggles::prelude::*;
use goggles::serve::codec::{fnv1a, Reader, Writer, MAX_SMALL_LEN};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One fitted labeler's snapshot in every format: (v1, v2, v2-quantized).
fn snapshots() -> &'static (Vec<u8>, Vec<u8>, Vec<u8>) {
    static SNAPSHOTS: OnceLock<(Vec<u8>, Vec<u8>, Vec<u8>)> = OnceLock::new();
    SNAPSHOTS.get_or_init(|| {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, 77);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, 77);
        let gcfg = GogglesConfig { seed: 77, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&gcfg, &ds, &dev).expect("fixture fit");
        (labeler.save(), labeler.save_v2(false), labeler.save_v2(true))
    })
}

/// Recompute the trailing FNV-1a checksum after an in-place payload edit,
/// so corruption reaches the *decoder* instead of being caught by the
/// integrity trailer.
fn rechecksum(bytes: &mut [u8]) {
    let n = bytes.len();
    let c = fnv1a(&bytes[..n - 8]);
    bytes[n - 8..].copy_from_slice(&c.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every truncated prefix of every format fails cleanly.
    #[test]
    fn truncated_prefixes_always_err(cut in 0usize..1_000_000) {
        let (v1, v2, v2q) = snapshots();
        for bytes in [v1, v2, v2q] {
            let cut = cut % bytes.len();
            prop_assert!(FittedLabeler::load(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    /// Any single bit flip anywhere (payload or trailer) fails the
    /// checksum — load errs, never panics.
    #[test]
    fn bit_flips_always_err(pos in 0usize..1_000_000, bit in 0usize..8) {
        let (v1, v2, v2q) = snapshots();
        for bytes in [v1, v2, v2q] {
            let mut bad = bytes.clone();
            let pos = pos % bad.len();
            bad[pos] ^= 1 << bit;
            prop_assert!(FittedLabeler::load(&bad).is_err(), "flip at {pos} bit {bit}");
        }
    }

    /// Stomping 8 arbitrary bytes into the payload and *re-checksumming*
    /// (a corrupted-but-checksummed artifact) must never panic the loader.
    /// The result may legitimately be Ok when the stomp only lands in
    /// parameter payloads; structural damage must come back as Err.
    #[test]
    fn checksummed_corruption_never_panics(
        pos in 0usize..1_000_000,
        value in 0u64..u64::MAX,
    ) {
        let (v1, v2, v2q) = snapshots();
        for bytes in [v1, v2, v2q] {
            let mut bad = bytes.clone();
            let payload_end = bad.len() - 8;
            let pos = 12 + pos % (payload_end - 8 - 12); // past magic+version
            bad[pos..pos + 8].copy_from_slice(&value.to_le_bytes());
            rechecksum(&mut bad);
            let _ = FittedLabeler::load(&bad); // must return, not panic/OOM
        }
    }

    /// Oversized length fields at the known structural offsets are
    /// rejected (bounded by `MAX_SMALL_LEN` / the remaining payload), not
    /// trusted into huge allocations.
    #[test]
    fn oversized_length_fields_always_err(huge in (MAX_SMALL_LEN as u64 + 1)..u64::MAX) {
        let (v1, v2, _) = snapshots();
        // v1 structural u64 offsets (format frozen; guarded below):
        // mapping len @118, bank N @142, Z @150, layer count @158,
        // layer-0 rows @166, layer-0 cols @174.
        let n_train = u64::from_le_bytes(v1[142..150].try_into().unwrap());
        prop_assert!(n_train == 16, "offset map drifted: N = {n_train}");
        for offset in [118usize, 142, 150, 158, 166, 174] {
            let mut bad = v1.clone();
            bad[offset..offset + 8].copy_from_slice(&huge.to_le_bytes());
            rechecksum(&mut bad);
            prop_assert!(FittedLabeler::load(&bad).is_err(), "v1 length at {offset}");
        }
        // v2 structural u32 offsets: bank N @75, Z @79, layer count @83,
        // layer-0 cols @87.
        let n_train_v2 = u32::from_le_bytes(v2[75..79].try_into().unwrap());
        prop_assert!(n_train_v2 == 16, "v2 offset map drifted: N = {n_train_v2}");
        let huge32 = (huge as u32).max(MAX_SMALL_LEN as u32 + 1);
        for offset in [75usize, 79, 83, 87] {
            let mut bad = v2.clone();
            bad[offset..offset + 4].copy_from_slice(&huge32.to_le_bytes());
            rechecksum(&mut bad);
            prop_assert!(FittedLabeler::load(&bad).is_err(), "v2 length at {offset}");
        }
    }

    /// The reader primitives never panic on arbitrary byte soup, and
    /// length-prefixed reads never allocate past the buffer.
    #[test]
    fn reader_primitives_never_panic(
        bytes in proptest::collection::vec(0u16..256, 0..96),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let mut r = Reader::new(&bytes);
        let _ = r.get_u8();
        let _ = r.get_u16();
        let _ = r.get_u32();
        let _ = r.get_bool();
        let _ = r.get_f32();
        let _ = r.get_f64();
        let _ = r.get_len(MAX_SMALL_LEN);
        let _ = r.get_len_u32(MAX_SMALL_LEN);
        let _ = r.get_usize_slice();
        let _ = r.get_f64_slice();
        let _ = r.get_matrix_f64();
        let _ = r.get_matrix_f32();
        let _ = r.get_f32_vec(MAX_SMALL_LEN);
        let _ = r.get_quantized_vec(MAX_SMALL_LEN);
        prop_assert!(r.remaining() <= bytes.len());
    }

    /// An honest length prefix above the sanity cap is rejected by every
    /// `MAX_SMALL_LEN` path even when the payload bytes "exist".
    #[test]
    fn implausible_prefix_lengths_are_capped(extra in 0u64..(1 << 40)) {
        let implausible = MAX_SMALL_LEN as u64 + 1 + extra;
        let mut w = Writer::new();
        w.put_u64(implausible);
        w.put_u32(u32::try_from(implausible.min(u64::from(u32::MAX))).unwrap());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        prop_assert!(r.get_len(MAX_SMALL_LEN).is_err());
        prop_assert!(r.get_len_u32(MAX_SMALL_LEN).is_err());
    }
}

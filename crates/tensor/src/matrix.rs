//! Row-major dense matrix used throughout the workspace.
//!
//! The affinity matrix `A ∈ R^{N×αN}` of the paper, label-prediction blocks,
//! CNN weight matrices and feature tables are all instances of [`Matrix`].

use crate::scalar::Scalar;
use crate::{Result, TensorError};

/// Dense row-major matrix over an [`Scalar`] element type.
///
/// Storage is a single `Vec<T>` of length `rows * cols`; row `i` occupies
/// `data[i*cols .. (i+1)*cols]`. Rows are exposed as slices so hot loops can
/// iterate without bounds checks.
#[derive(Clone, PartialEq)]
pub struct Matrix<T: Scalar> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// A `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix of size `n`.
    pub(crate) fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a row-major `Vec`; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch(format!(
                "from_vec: {} elements cannot fill a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from row slices; all rows must have equal length.
    ///
    /// # Panics
    /// Panics if the rows are ragged. Intended for literals in tests/docs.
    pub fn from_rows(rows: &[&[T]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged row");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Build with a generator closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix holds no elements.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the backing row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[T] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<T> {
        assert!(j < self.cols, "column {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                out.data[j * self.rows + i] = v;
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Uses the cache-friendly `ikj` loop order over row slices, which LLVM
    /// vectorizes in release builds. Shapes must agree.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a_ik) in a_row.iter().enumerate() {
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[T]) -> Vec<T> {
        assert_eq!(self.cols, v.len(), "matvec: {}x{} * {}", self.rows, self.cols, v.len());
        self.rows_iter().map(|row| row.iter().zip(v.iter()).map(|(&a, &b)| a * b).sum()).collect()
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(T) -> T) -> Self {
        Self { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Elementwise in-place map.
    pub fn map_in_place(&mut self, f: impl Fn(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Self) -> Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise combination of two equally-shaped matrices.
    pub(crate) fn zip_with(&self, other: &Self, f: impl Fn(T, T) -> T) -> Result<Self> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch(format!(
                "zip_with: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        Ok(Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Sum of all elements.
    pub fn sum(&self) -> T {
        self.data.iter().copied().sum()
    }

    /// Frobenius norm.
    pub(crate) fn frobenius_norm(&self) -> T {
        self.data.iter().map(|&v| v * v).sum::<T>().sqrt()
    }

    /// Per-column means; empty matrix yields an empty vector.
    pub fn col_means(&self) -> Vec<T> {
        if self.rows == 0 {
            return vec![T::ZERO; self.cols];
        }
        let inv_n = T::ONE / T::from_f64(self.rows as f64);
        let mut means = vec![T::ZERO; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m *= inv_n;
        }
        means
    }

    /// Per-column (population) variances.
    pub fn col_variances(&self) -> Vec<T> {
        let means = self.col_means();
        if self.rows == 0 {
            return vec![T::ZERO; self.cols];
        }
        let inv_n = T::ONE / T::from_f64(self.rows as f64);
        let mut vars = vec![T::ZERO; self.cols];
        for row in self.rows_iter() {
            for ((vv, &v), &m) in vars.iter_mut().zip(row.iter()).zip(means.iter()) {
                let d = v - m;
                *vv += d * d;
            }
        }
        for v in &mut vars {
            *v *= inv_n;
        }
        vars
    }

    /// L2-normalize each row in place. Zero rows are left untouched.
    pub fn l2_normalize_rows(&mut self) {
        let cols = self.cols;
        for row in self.data.chunks_exact_mut(cols.max(1)) {
            let norm = row.iter().map(|&v| v * v).sum::<T>().sqrt();
            if norm > T::ZERO {
                let inv = T::ONE / norm;
                for v in row {
                    *v *= inv;
                }
            }
        }
    }

    /// Horizontally concatenate `self | other` (equal row counts).
    pub fn hstack(&self, other: &Self) -> Result<Self> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch(format!(
                "hstack: {} vs {} rows",
                self.rows, other.rows
            )));
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Ok(Self { rows: self.rows, cols, data })
    }

    /// Vertically concatenate `self` on top of `other` (equal column counts).
    pub fn vstack(&self, other: &Self) -> Result<Self> {
        if self.cols != other.cols {
            return Err(TensorError::ShapeMismatch(format!(
                "vstack: {} vs {} cols",
                self.cols, other.cols
            )));
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Self { rows: self.rows + other.rows, cols: self.cols, data })
    }

    /// Copy of the column block `[col_start, col_end)`.
    pub fn col_block(&self, col_start: usize, col_end: usize) -> Self {
        assert!(col_start <= col_end && col_end <= self.cols);
        let cols = col_end - col_start;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(&self.row(i)[col_start..col_end]);
        }
        Self { rows: self.rows, cols, data }
    }

    /// Copy of the rows selected by `indices`, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Self { rows: indices.len(), cols: self.cols, data }
    }

    /// `true` when every element is finite.
    // goggles-lint: allow(dead-pub): documented numeric API; currently exercised only by this crate's unit tests
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute elementwise difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(T::ZERO, |acc, v| acc.maximum(v))
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(10);
            for j in 0..cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > 10 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix<f64> {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0f64; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0f64; 4]).is_ok());
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indexing() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = vec![1.0, 0.5, -1.0];
        let got = m.matvec(&v);
        assert_eq!(got, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
    }

    #[test]
    fn col_means_and_variances() {
        let m = Matrix::from_rows(&[&[1.0, 10.0], &[3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        assert_eq!(m.col_variances(), vec![1.0, 0.0]);
    }

    #[test]
    fn l2_normalize_rows_unit_norm() {
        let mut m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        m.l2_normalize_rows();
        assert!((m.row(0).iter().map(|v| v * v).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn stacking_round_trip() {
        let m = sample();
        let h = m.hstack(&m).unwrap();
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.col_block(3, 6), m);
        let v = m.vstack(&m).unwrap();
        assert_eq!(v.shape(), (4, 3));
        assert_eq!(v.select_rows(&[2, 3]), m);
    }

    #[test]
    fn stacking_shape_errors() {
        let m = sample();
        let t = m.transpose();
        assert!(m.hstack(&t).is_err());
        assert!(m.vstack(&t).is_err());
    }

    #[test]
    fn select_rows_reorders() {
        let m = sample();
        let r = m.select_rows(&[1, 0]);
        assert_eq!(r.row(0), m.row(1));
        assert_eq!(r.row(1), m.row(0));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = sample();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn zip_with_add_sub() {
        let m = sample();
        let s = m.add(&m).unwrap().sub(&m).unwrap();
        assert_eq!(s, m);
    }
}

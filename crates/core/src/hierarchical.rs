//! The hierarchical generative model (§4.1, Figure 6).
//!
//! *Base layer*: one diagonal-covariance GMM per affinity function, fit on
//! that function's `N × N` slice of the affinity matrix, emitting a label
//! prediction matrix `LP_f ∈ R^{N×K}`.
//!
//! *Ensemble layer*: the α blocks are one-hot encoded ("we convert LP to a
//! one-hot encoded matrix by converting the highest class prediction to 1"),
//! concatenated into `LP ∈ {0,1}^{N×αK}` and modeled with a multivariate
//! Bernoulli mixture whose parameters `b_{k,l}` learn each affinity
//! function's reliability.
//!
//! Base models are independent, so they are fit on a thread fan-out — the
//! parallelization §5.3 of the paper describes.

use crate::affinity::AffinityMatrix;
use crate::Result;
use goggles_models::{BernoulliMixture, DiagonalGmm, EmOptions};
use goggles_tensor::Matrix;

/// Options for the hierarchical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalOptions {
    /// Number of classes K.
    pub num_classes: usize,
    /// EM options shared by base and ensemble models.
    pub em: EmOptions,
    /// One-hot encode the concatenated LP before the ensemble (paper
    /// behaviour). `false` feeds raw probabilities — an ablation knob that
    /// demonstrates the §4.1 argument for categorical modeling.
    pub one_hot: bool,
    /// Thread fan-out for the base models.
    pub threads: usize,
    /// Seed for all stochastic initialization.
    pub seed: u64,
}

impl Default for HierarchicalOptions {
    fn default() -> Self {
        Self { num_classes: 2, em: EmOptions::default(), one_hot: true, threads: 8, seed: 0 }
    }
}

/// Fitted hierarchical model.
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// The fitted per-function base models (diagonal GMMs over that
    /// function's `N`-dimensional affinity columns), kept so new rows can be
    /// folded in without refitting (see [`HierarchicalModel::predict_proba`]).
    /// Each model's `responsibilities` is its `N × K` label-prediction
    /// matrix (cluster ids are per-model and unaligned — the ensemble
    /// resolves that); see `HierarchicalModel::base_prediction`.
    pub base_models: Vec<DiagonalGmm>,
    /// Concatenated (one-hot) ensemble input, `N × αK`.
    pub ensemble_input: Matrix<f64>,
    /// Final ensemble responsibilities, `N × K` (cluster space, pre-mapping).
    pub responsibilities: Matrix<f64>,
    /// The fitted ensemble model (its Bernoulli parameters are per-function
    /// reliability estimates).
    pub ensemble: BernoulliMixture,
    /// Whether base predictions were one-hot encoded before the ensemble
    /// (recorded so fold-in encodes new rows identically).
    pub one_hot: bool,
    /// Final ensemble log-likelihood.
    pub log_likelihood: f64,
}

impl HierarchicalModel {
    /// Fit the full hierarchy on an affinity matrix.
    ///
    /// Timing of the two EM phases (base-layer fan-out, ensemble fit) and
    /// their iteration counts are recorded into the process-wide
    /// [`goggles_obs::global`] registry as `goggles_fit_stage_latency_us`
    /// and `goggles_fit_em_iterations` — observation only, no effect on the
    /// fitted parameters.
    pub fn fit(affinity: &AffinityMatrix, opts: &HierarchicalOptions) -> Result<Self> {
        let obs = fit_metrics();
        let k = opts.num_classes;
        let base_models = {
            let _span = goggles_obs::Span::enter(&obs.em_base);
            fit_base_models(affinity, opts)?
        };
        for gmm in &base_models {
            obs.base_iterations.observe(gmm.stats.iterations as u64);
        }
        let lp: Vec<&Matrix<f64>> = base_models.iter().map(|g| &g.responsibilities).collect();
        let ensemble_input = concat_label_predictions(&lp, opts.one_hot);
        // The ensemble fit is cheap (binary N × αK input) but decides the
        // final labels, so it gets extra restarts regardless of the base
        // models' budget: EM local optima here directly cost accuracy.
        let ensemble_em = EmOptions { restarts: opts.em.restarts.max(5), ..opts.em };
        let ensemble = {
            let _span = goggles_obs::Span::enter(&obs.em_ensemble);
            BernoulliMixture::fit(&ensemble_input, k, &ensemble_em, opts.seed ^ 0xE45E_3B1E)?
        };
        obs.ensemble_iterations.observe(ensemble.stats.iterations as u64);
        obs.fits_total.inc();
        let responsibilities = ensemble.responsibilities.clone();
        let log_likelihood = ensemble.stats.log_likelihood;
        Ok(Self {
            base_models,
            ensemble_input,
            responsibilities,
            ensemble,
            one_hot: opts.one_hot,
            log_likelihood,
        })
    }

    /// Refit the hierarchy on an affinity matrix, **warm-starting** every EM
    /// from `prev`'s parameters instead of k-means: no restarts, no RNG
    /// anywhere, so the result is deterministic in `(affinity, prev)` alone
    /// and in particular independent of `opts.threads`.
    ///
    /// `affinity` may be rectangular — `(N + m) × αN` with rows appended
    /// against the frozen prototype bank (the incremental-refit path): each
    /// base GMM's dimensionality is the column count `N` of its block, which
    /// appending rows does not change, so `prev`'s means/variances remain
    /// shape-compatible. Requires `prev.alpha() == affinity.alpha` and
    /// `prev.n_train() == affinity.n`.
    pub fn refit_warm(
        affinity: &AffinityMatrix,
        prev: &Self,
        opts: &HierarchicalOptions,
    ) -> Result<Self> {
        if prev.alpha() != affinity.alpha || prev.n_train() != affinity.n {
            return Err(crate::GogglesError::InvalidInput(format!(
                "warm refit: previous model is α={}, N={} but affinity matrix is α={}, N={}",
                prev.alpha(),
                prev.n_train(),
                affinity.alpha,
                affinity.n
            )));
        }
        if affinity.data.rows() < affinity.n {
            return Err(crate::GogglesError::InvalidInput(format!(
                "warm refit: affinity matrix has {} rows, fewer than its declared N = {}",
                affinity.data.rows(),
                affinity.n
            )));
        }
        let obs = fit_metrics();
        let base_models = {
            let _span = goggles_obs::Span::enter(&obs.em_base);
            refit_base_models_warm(affinity, prev, opts)?
        };
        for gmm in &base_models {
            obs.base_iterations.observe(gmm.stats.iterations as u64);
        }
        let lp: Vec<&Matrix<f64>> = base_models.iter().map(|g| &g.responsibilities).collect();
        // Encode exactly like the previous fit so fold-in stays consistent.
        let ensemble_input = concat_label_predictions(&lp, prev.one_hot);
        let ensemble = {
            let _span = goggles_obs::Span::enter(&obs.em_ensemble);
            BernoulliMixture::fit_from(
                &ensemble_input,
                &prev.ensemble.weights,
                &prev.ensemble.probs,
                &opts.em,
            )?
        };
        obs.ensemble_iterations.observe(ensemble.stats.iterations as u64);
        obs.fits_total.inc();
        let responsibilities = ensemble.responsibilities.clone();
        let log_likelihood = ensemble.stats.log_likelihood;
        Ok(Self {
            base_models,
            ensemble_input,
            responsibilities,
            ensemble,
            one_hot: prev.one_hot,
            log_likelihood,
        })
    }

    /// Number of base models (α).
    pub fn alpha(&self) -> usize {
        self.base_models.len()
    }

    /// Dimensionality each base model was fit on (the training corpus size
    /// `N` — every affinity function block is `N` columns wide).
    pub fn n_train(&self) -> usize {
        self.base_models.first().map_or(0, |g| g.means.cols())
    }

    /// Cluster posteriors for **new** affinity rows without any refitting:
    /// each function's `N`-column block goes through its stored base GMM's
    /// posterior, the blocks are (one-hot) concatenated exactly as in
    /// training, and the stored ensemble emits `P(cluster | row)`.
    ///
    /// `rows` must be `m × αN`, laid out like [`AffinityMatrix::data`]
    /// (e.g. from [`crate::PrototypeBank::affinity_rows`]). Returns `m × K`
    /// in **cluster** space — apply the dev-set mapping for class space.
    pub fn predict_proba(&self, rows: &Matrix<f64>) -> Result<Matrix<f64>> {
        let alpha = self.alpha();
        let n = self.n_train();
        if rows.cols() != alpha * n {
            return Err(crate::GogglesError::InvalidInput(format!(
                "affinity rows have {} columns; model expects α·N = {}·{} = {}",
                rows.cols(),
                alpha,
                n,
                alpha * n
            )));
        }
        Ok(fold_in_rows(&self.base_models, &self.ensemble, self.one_hot, rows))
    }

    /// Estimated reliability of each affinity function: the mean absolute
    /// deviation of its ensemble Bernoulli parameters from 0.5. A useless
    /// function's one-hot votes are independent of the cluster, so its
    /// `b_{k,l}` sit near the base rate; an informative one's sit near 0/1.
    pub fn function_reliabilities(&self) -> Vec<f64> {
        let k = self.ensemble.probs.rows();
        let alpha = self.alpha();
        let kk = self.ensemble.probs.cols() / alpha;
        let mut out = Vec::with_capacity(alpha);
        for f in 0..alpha {
            let mut acc = 0.0;
            let mut cnt = 0;
            for comp in 0..k {
                for l in f * kk..(f + 1) * kk {
                    acc += (self.ensemble.probs[(comp, l)] - 0.5).abs();
                    cnt += 1;
                }
            }
            out.push(acc / cnt as f64);
        }
        out
    }
}

/// Fold precomputed affinity rows (`m × αN`, laid out like
/// [`AffinityMatrix::data`]) through **already-fitted** models: each
/// function's `N`-column block goes through its base GMM's posterior, the
/// blocks are concatenated exactly as in training, and the ensemble emits
/// `P(cluster | row)` (`m × K`, cluster space — no refitting anywhere).
///
/// This is the single source of truth for the fold-in math; both
/// [`HierarchicalModel::predict_proba`] and the `goggles-serve` snapshot
/// path call it.
///
/// # Panics
/// Panics if `base_models` is empty or `rows` is not `m × αN`.
pub fn fold_in_rows(
    base_models: &[DiagonalGmm],
    ensemble: &BernoulliMixture,
    one_hot: bool,
    rows: &Matrix<f64>,
) -> Matrix<f64> {
    assert!(!base_models.is_empty(), "need at least one base model");
    let n = base_models[0].means.cols();
    let alpha = base_models.len();
    assert_eq!(rows.cols(), alpha * n, "affinity rows must be m × αN ({alpha}·{n})");
    let lp: Vec<Matrix<f64>> = base_models
        .iter()
        .enumerate()
        .map(|(f, gmm)| gmm.predict_proba(&rows.col_block(f * n, (f + 1) * n)))
        .collect();
    let input = concat_label_predictions(&lp, one_hot);
    ensemble.predict_proba(&input)
}

/// Cached handles into the process-wide observability registry for the fit
/// path. Resolved once; afterwards recording is lock-free atomics.
struct FitMetrics {
    em_base: goggles_obs::Histogram,
    em_ensemble: goggles_obs::Histogram,
    base_iterations: goggles_obs::Histogram,
    ensemble_iterations: goggles_obs::Histogram,
    fits_total: goggles_obs::Counter,
}

fn fit_metrics() -> &'static FitMetrics {
    static METRICS: std::sync::OnceLock<FitMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = goggles_obs::global();
        let stage_help = "Wall time of hierarchical-fit phases in microseconds";
        let iter_help = "EM iterations consumed by the winning restart";
        FitMetrics {
            em_base: reg.histogram(
                "goggles_fit_stage_latency_us",
                stage_help,
                &[("stage", "em_base")],
            ),
            em_ensemble: reg.histogram(
                "goggles_fit_stage_latency_us",
                stage_help,
                &[("stage", "em_ensemble")],
            ),
            base_iterations: reg.histogram(
                "goggles_fit_em_iterations",
                iter_help,
                &[("layer", "base")],
            ),
            ensemble_iterations: reg.histogram(
                "goggles_fit_em_iterations",
                iter_help,
                &[("layer", "ensemble")],
            ),
            fits_total: reg.counter("goggles_fits_total", "Completed hierarchical model fits", &[]),
        }
    })
}

/// Fit one diagonal GMM per affinity-function block, in parallel.
fn fit_base_models(
    affinity: &AffinityMatrix,
    opts: &HierarchicalOptions,
) -> Result<Vec<DiagonalGmm>> {
    let alpha = affinity.alpha;
    // An empty affinity matrix would otherwise reach `chunks_mut(0)` below
    // and panic with an opaque slice error inside the worker fan-out.
    if alpha == 0 || affinity.n == 0 {
        return Err(crate::GogglesError::InvalidInput(format!(
            "cannot fit base models on an empty affinity matrix (α = {alpha}, N = {})",
            affinity.n
        )));
    }
    let k = opts.num_classes;
    let threads = opts.threads.max(1).min(alpha);
    let mut results: Vec<Option<Result<DiagonalGmm>>> = Vec::new();
    results.resize_with(alpha, || None);
    let chunk = alpha.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let f = start + off;
                    let block = affinity.function_block(f);
                    let fit =
                        DiagonalGmm::fit(&block, k, &opts.em, opts.seed ^ (0xBA5E_0000 + f as u64));
                    *slot = Some(fit.map_err(Into::into));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("worker filled slot")).collect()
}

/// Warm-start one diagonal GMM per affinity-function block from the
/// previous fit's parameters, in parallel. Each per-block fit is RNG-free
/// and depends only on its own block + starting parameters, so the thread
/// fan-out cannot change any result.
fn refit_base_models_warm(
    affinity: &AffinityMatrix,
    prev: &HierarchicalModel,
    opts: &HierarchicalOptions,
) -> Result<Vec<DiagonalGmm>> {
    let alpha = affinity.alpha;
    let threads = opts.threads.max(1).min(alpha);
    let mut results: Vec<Option<Result<DiagonalGmm>>> = Vec::new();
    results.resize_with(alpha, || None);
    let chunk = alpha.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, out_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = t * chunk;
            scope.spawn(move || {
                for (off, slot) in out_chunk.iter_mut().enumerate() {
                    let f = start + off;
                    let block = affinity.function_block(f);
                    let seed_model = &prev.base_models[f];
                    let fit = DiagonalGmm::fit_from(
                        &block,
                        &seed_model.weights,
                        &seed_model.means,
                        &seed_model.variances,
                        &opts.em,
                    );
                    *slot = Some(fit.map_err(Into::into));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("worker filled slot")).collect()
}

/// Concatenate α label-prediction matrices into the ensemble input
/// (`N × αK`), one-hot encoding each block when requested. Accepts owned
/// matrices or references (`&[Matrix<f64>]` / `&[&Matrix<f64>]`).
pub(crate) fn concat_label_predictions<M: std::borrow::Borrow<Matrix<f64>>>(
    blocks: &[M],
    one_hot: bool,
) -> Matrix<f64> {
    assert!(!blocks.is_empty(), "need at least one base model");
    let n = blocks[0].borrow().rows();
    let k = blocks[0].borrow().cols();
    let mut out = Matrix::<f64>::zeros(n, blocks.len() * k);
    for (f, block) in blocks.iter().enumerate() {
        let block = block.borrow();
        assert_eq!(block.shape(), (n, k), "ragged LP block {f}");
        for i in 0..n {
            let src = block.row(i);
            let dst = &mut out.row_mut(i)[f * k..(f + 1) * k];
            if one_hot {
                let best = goggles_tensor::argmax(src);
                dst[best] = 1.0;
            } else {
                dst.copy_from_slice(src);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    /// Synthetic affinity matrix: `alpha_good` informative functions whose
    /// blocks have same-class affinity ≈ hi and cross ≈ lo, plus
    /// `alpha_noise` pure-noise functions. Returns (matrix, truth).
    fn synthetic_affinity(
        n_per: usize,
        alpha_good: usize,
        alpha_noise: usize,
        gap: f64,
        seed: u64,
    ) -> (AffinityMatrix, Vec<usize>) {
        let n = 2 * n_per;
        let alpha = alpha_good + alpha_noise;
        let truth: Vec<usize> = (0..n).map(|i| usize::from(i >= n_per)).collect();
        let mut rng = std_rng(seed);
        let mut data = Matrix::<f64>::zeros(n, alpha * n);
        for f in 0..alpha {
            for i in 0..n {
                for j in 0..n {
                    let v = if f < alpha_good {
                        let base = if truth[i] == truth[j] { 0.5 + gap } else { 0.5 - gap };
                        base + 0.05 * normal(&mut rng)
                    } else {
                        0.5 + 0.15 * normal(&mut rng)
                    };
                    data[(i, f * n + j)] = v.clamp(0.0, 1.0);
                }
            }
        }
        (AffinityMatrix { data, n, alpha, z_per_layer: 1 }, truth)
    }

    fn binary_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    fn opts(seed: u64) -> HierarchicalOptions {
        HierarchicalOptions {
            em: EmOptions { restarts: 2, ..EmOptions::default() },
            seed,
            threads: 4,
            ..HierarchicalOptions::default()
        }
    }

    #[test]
    fn recovers_classes_from_clean_affinities() {
        let (am, truth) = synthetic_affinity(20, 3, 0, 0.3, 1);
        let model = HierarchicalModel::fit(&am, &opts(0)).unwrap();
        let labels = goggles_models::hard_labels(&model.responsibilities);
        assert!(binary_accuracy(&labels, &truth) > 0.95);
    }

    #[test]
    fn tolerates_majority_noise_functions() {
        // 2 informative functions among 8 noise ones — the affinity
        // selection problem the ensemble must solve (§4.1).
        let (am, truth) = synthetic_affinity(20, 2, 8, 0.3, 2);
        let model = HierarchicalModel::fit(&am, &opts(1)).unwrap();
        let labels = goggles_models::hard_labels(&model.responsibilities);
        assert!(binary_accuracy(&labels, &truth) > 0.9);
    }

    #[test]
    fn reliabilities_rank_good_functions_above_noise() {
        let (am, _) = synthetic_affinity(25, 2, 4, 0.35, 3);
        let model = HierarchicalModel::fit(&am, &opts(2)).unwrap();
        let rel = model.function_reliabilities();
        assert_eq!(rel.len(), 6);
        let min_good = rel[..2].iter().cloned().fold(f64::INFINITY, f64::min);
        let max_noise = rel[2..].iter().cloned().fold(0.0f64, f64::max);
        assert!(
            min_good > max_noise,
            "good {min_good:.3} should exceed noise {max_noise:.3} ({rel:?})"
        );
    }

    #[test]
    fn one_hot_encoding_is_binary_row_block_normalized() {
        let blocks = vec![
            Matrix::from_rows(&[&[0.9, 0.1], &[0.4, 0.6]]),
            Matrix::from_rows(&[&[0.2, 0.8], &[0.7, 0.3]]),
        ];
        let lp = concat_label_predictions(&blocks, true);
        assert_eq!(lp.shape(), (2, 4));
        assert_eq!(lp.row(0), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(lp.row(1), &[0.0, 1.0, 1.0, 0.0]);
        // raw mode passes probabilities through
        let raw = concat_label_predictions(&blocks, false);
        assert_eq!(raw.row(0), &[0.9, 0.1, 0.2, 0.8]);
    }

    #[test]
    fn ensemble_dims_are_alpha_times_k() {
        let (am, _) = synthetic_affinity(15, 2, 1, 0.3, 4);
        let model = HierarchicalModel::fit(&am, &opts(3)).unwrap();
        assert_eq!(model.alpha(), 3);
        assert_eq!(model.ensemble_input.shape(), (30, 6));
        assert_eq!(model.responsibilities.shape(), (30, 2));
    }

    #[test]
    fn deterministic_per_seed() {
        let (am, _) = synthetic_affinity(15, 2, 2, 0.3, 5);
        let a = HierarchicalModel::fit(&am, &opts(7)).unwrap();
        let b = HierarchicalModel::fit(&am, &opts(7)).unwrap();
        assert_eq!(
            goggles_models::hard_labels(&a.responsibilities),
            goggles_models::hard_labels(&b.responsibilities)
        );
    }

    #[test]
    fn fold_in_reproduces_training_posteriors() {
        // predict_proba on the training rows themselves must agree with the
        // stored responsibilities (same E-step on converged parameters).
        let (am, _) = synthetic_affinity(15, 2, 1, 0.3, 8);
        let model = HierarchicalModel::fit(&am, &opts(4)).unwrap();
        assert_eq!(model.n_train(), am.n);
        let rep = model.predict_proba(&am.data).unwrap();
        let diff = rep.max_abs_diff(&model.responsibilities);
        assert!(diff < 1e-8, "diff = {diff}");
    }

    #[test]
    fn empty_affinity_matrix_is_invalid_input_not_a_panic() {
        // Regression: α = 0 used to reach `alpha.div_ceil(threads)` with
        // threads clamped to 0 and panic inside the worker fan-out.
        let empty = AffinityMatrix { data: Matrix::zeros(0, 0), n: 0, alpha: 0, z_per_layer: 1 };
        match HierarchicalModel::fit(&empty, &opts(0)) {
            Err(crate::GogglesError::InvalidInput(msg)) => {
                assert!(msg.contains("empty affinity matrix"), "unexpected message: {msg}");
            }
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // α > 0 but N = 0 (no instances) is equally unfittable.
        let no_rows = AffinityMatrix { data: Matrix::zeros(0, 0), n: 0, alpha: 3, z_per_layer: 1 };
        assert!(matches!(
            HierarchicalModel::fit(&no_rows, &opts(0)),
            Err(crate::GogglesError::InvalidInput(_))
        ));
    }

    #[test]
    fn warm_refit_improves_and_ignores_thread_count() {
        let (am, truth) = synthetic_affinity(15, 2, 2, 0.3, 10);
        let cold = HierarchicalModel::fit(&am, &opts(11)).unwrap();
        let warm = HierarchicalModel::refit_warm(&am, &cold, &opts(11)).unwrap();
        assert!(warm.log_likelihood >= cold.log_likelihood - 1e-9);
        let labels = goggles_models::hard_labels(&warm.responsibilities);
        assert!(binary_accuracy(&labels, &truth) > 0.9);
        // Thread fan-out must not change a single bit of the result.
        for threads in [1usize, 2, 7] {
            let o = HierarchicalOptions { threads, ..opts(11) };
            let again = HierarchicalModel::refit_warm(&am, &cold, &o).unwrap();
            assert_eq!(again.log_likelihood, warm.log_likelihood);
            assert_eq!(
                again.responsibilities.as_slice(),
                warm.responsibilities.as_slice(),
                "threads = {threads}"
            );
            for (a, b) in again.base_models.iter().zip(&warm.base_models) {
                assert_eq!(a.means.as_slice(), b.means.as_slice());
            }
        }
    }

    #[test]
    fn warm_refit_accepts_appended_rows() {
        // Rectangular (N + m) × αN input: the incremental-append shape. The
        // base models' dimensionality (block width N) is unchanged.
        let (am, _) = synthetic_affinity(12, 2, 1, 0.3, 12);
        let cold = HierarchicalModel::fit(&am, &opts(13)).unwrap();
        let n = am.n;
        let m = 5usize;
        let grown = Matrix::from_fn(n + m, am.alpha * n, |i, j| am.data[(i % n, j)]);
        let grown = AffinityMatrix { data: grown, n, alpha: am.alpha, z_per_layer: am.z_per_layer };
        let warm = HierarchicalModel::refit_warm(&grown, &cold, &opts(13)).unwrap();
        assert_eq!(warm.responsibilities.rows(), n + m);
        assert_eq!(warm.n_train(), n);
        assert!(warm.log_likelihood.is_finite());
    }

    #[test]
    fn warm_refit_rejects_mismatched_shapes() {
        let (am, _) = synthetic_affinity(10, 2, 0, 0.3, 14);
        let model = HierarchicalModel::fit(&am, &opts(15)).unwrap();
        let (other, _) = synthetic_affinity(10, 3, 0, 0.3, 14);
        assert!(matches!(
            HierarchicalModel::refit_warm(&other, &model, &opts(15)),
            Err(crate::GogglesError::InvalidInput(_))
        ));
        // A declared N above the model's training N is rejected too.
        let short = AffinityMatrix {
            data: am.data.clone(),
            n: am.n + 1,
            alpha: am.alpha,
            z_per_layer: am.z_per_layer,
        };
        assert!(HierarchicalModel::refit_warm(&short, &model, &opts(15)).is_err());
    }

    #[test]
    fn fold_in_rejects_wrong_width() {
        let (am, _) = synthetic_affinity(10, 2, 0, 0.3, 9);
        let model = HierarchicalModel::fit(&am, &opts(5)).unwrap();
        let bad = Matrix::<f64>::zeros(1, am.n * am.alpha + 1);
        assert!(model.predict_proba(&bad).is_err());
    }

    #[test]
    fn hierarchical_parameter_count_is_linear_in_n() {
        // The §4.1 claim: hierarchy has 2αKN + αK parameters vs the naive
        // full GMM's K(C(αN,2) + αN). Verify the formula on our shapes.
        let (am, _) = synthetic_affinity(10, 2, 0, 0.3, 6);
        let n = am.n;
        let alpha = am.alpha;
        let k = 2usize;
        let hier_params = 2 * alpha * k * n + alpha * k;
        let d = alpha * n;
        let naive_params = k * (d * (d - 1) / 2 + d);
        assert!(hier_params < naive_params / 4, "{hier_params} vs {naive_params}");
    }
}

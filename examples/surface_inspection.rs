//! Industrial-inspection scenario comparing GOGGLES against the full
//! baseline lineup of Table 1 on one dataset: the data-programming system
//! Snuba (on automatically extracted primitives), the HOG and logits
//! representation ablations, and the generic clustering baselines.
//!
//! ```text
//! cargo run --release --example surface_inspection
//! ```

use goggles::experiments::methods::{
    run_flat_gmm, run_goggles, run_hog, run_kmeans, run_logits, run_snuba, run_spectral,
};
use goggles::experiments::{RunParams, TrialContext};

fn main() {
    let params = RunParams {
        n_train_per_class: 24,
        n_test_per_class: 8,
        image_size: 32,
        pairs: 1,
        trials: 1,
        dev_per_class: 5,
        top_z: 6,
        tiny_backbone: true,
    };
    let task = params.tasks_for_trial(0)[2]; // Surface
    println!("building shared context (backbone, affinity matrix, features)…");
    let ctx = TrialContext::build(&params, &task, 0);
    println!(
        "affinity matrix: {} × {} ({} affinity functions over {} instances)\n",
        ctx.affinity.data.rows(),
        ctx.affinity.data.cols(),
        ctx.affinity.alpha,
        ctx.affinity.n
    );

    type MethodRunner<'a> = Box<dyn Fn() -> goggles::experiments::methods::MethodOutput + 'a>;
    let methods: Vec<(&str, MethodRunner)> = vec![
        ("GOGGLES", Box::new(|| run_goggles(&ctx))),
        ("Snuba", Box::new(|| run_snuba(&ctx))),
        ("HoG affinity", Box::new(|| run_hog(&ctx))),
        ("Logits affinity", Box::new(|| run_logits(&ctx))),
        ("K-Means on A", Box::new(|| run_kmeans(&ctx))),
        ("flat GMM on A", Box::new(|| run_flat_gmm(&ctx))),
        ("Spectral on A", Box::new(|| run_spectral(&ctx))),
    ];

    println!("{:<16} labeling accuracy", "method");
    println!("{}", "-".repeat(36));
    let mut results = Vec::new();
    for (name, run) in &methods {
        let out = run();
        let acc = out.labeling_accuracy(&ctx);
        results.push((*name, acc));
        println!("{name:<16} {:.2}%", 100.0 * acc);
    }

    let goggles_acc = results[0].1;
    let best_baseline = results[1..].iter().map(|&(_, a)| a).fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nGOGGLES {} the best baseline ({:+.1} points)",
        if goggles_acc >= best_baseline { "matches or beats" } else { "trails" },
        100.0 * (goggles_acc - best_baseline)
    );
}

//! Fixture: hash lookups are fine; ordered iteration goes through a
//! BTreeMap; an order-free reduction is annotated.

use std::collections::{BTreeMap, HashMap};

pub fn lookup(table: HashMap<u32, f64>, key: u32) -> f64 {
    table.get(&key).copied().unwrap_or(0.0)
}

pub fn total(weights: HashMap<u32, f64>) -> f64 {
    // goggles-lint: allow(hash-iter): summation is commutative; order cannot change the result
    weights.values().sum()
}

pub fn ordered(scores: BTreeMap<u32, f64>) -> Vec<f64> {
    scores.values().copied().collect()
}

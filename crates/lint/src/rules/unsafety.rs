//! `unsafe`: the workspace is unsafe-free, and stays that way unless argued.
//!
//! Every kernel here (GEMM, im2col, EM updates) is written in safe Rust on
//! purpose: the perf PRs got their wins from blocking and layout, not from
//! `get_unchecked`. This rule keeps the invariant machine-checked — any
//! `unsafe` keyword must sit under a `// SAFETY:` comment justifying the
//! proof obligation, in addition to the usual `allow(unsafe)` hatch.

use crate::engine::{Diagnostic, SourceFile};

/// How many lines above the `unsafe` keyword a `SAFETY:` comment may end
/// and still be considered attached to it.
const SAFETY_COMMENT_REACH: usize = 3;

/// Flag `unsafe` keywords lacking an adjacent `// SAFETY:` comment.
pub(crate) fn check_unsafe(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for t in &file.tokens {
        if t.ident() != Some("unsafe") {
            continue;
        }
        let justified = file.comments.iter().any(|c| {
            c.text.contains("SAFETY:")
                && c.end_line <= t.line
                && c.end_line + SAFETY_COMMENT_REACH >= t.line
        });
        if justified {
            continue;
        }
        file.report(
            out,
            "unsafe",
            t.line,
            "this workspace is unsafe-free; if unsafe is truly required, precede it \
             with a `// SAFETY:` comment discharging the proof obligation"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new("crates/tensor/src/linalg.rs".into(), src);
        let mut out = Vec::new();
        check_unsafe(&f, &mut out);
        out
    }

    #[test]
    fn bare_unsafe_is_flagged() {
        assert_eq!(diags("fn f(p: *const u8) { unsafe { p.read() }; }").len(), 1);
    }

    #[test]
    fn safety_comment_discharges() {
        let src = "\
fn f(p: *const u8) {
    // SAFETY: p comes from a live Vec whose length was checked above.
    unsafe { p.read() };
}
";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn distant_safety_comment_does_not_count() {
        let src = "\
// SAFETY: stale justification far away
fn a() {}
fn b() {}
fn c() {}
fn f(p: *const u8) { unsafe { p.read() }; }
";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn the_word_in_strings_or_comments_is_ignored() {
        let src = "fn f() { let s = \"unsafe\"; } // unsafe mentioned in prose";
        assert!(diags(src).is_empty());
    }
}

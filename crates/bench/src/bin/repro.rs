//! `repro` — run any paper experiment by name without the bench harness:
//!
//! ```text
//! GOGGLES_SCALE=paper cargo run --release -p goggles-bench --bin repro -- table1
//! cargo run --release -p goggles-bench --bin repro -- all
//! ```
//!
//! Accepted names: `table1`, `table2`, `fig2`, `fig5`, `fig7`, `fig8`,
//! `fig9`, `serving`, `affinity`, `embed`, `fit`, `all`. Results print as
//! text tables and are saved as CSV (plus `BENCH_serving.json` /
//! `BENCH_affinity.json` / `BENCH_embed.json` / `BENCH_fit.json` for the
//! performance runs) under `results/` (override with `GOGGLES_RESULTS_DIR`).

use goggles::experiments::{
    affinity_bench, embed_bench, figures, fit_bench, serving, table1, table2, Scale, TrialContext,
};
use goggles_bench::{emit, timed};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let known = [
        "table1", "table2", "fig2", "fig5", "fig7", "fig8", "fig9", "serving", "affinity", "embed",
        "fit", "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown experiment {what:?}; expected one of {known:?}");
        std::process::exit(2);
    }
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");

    let run = |name: &str| what == name || what == "all";

    if run("table1") {
        let results = timed("Table 1", || table1::run(&params));
        emit(&results.to_table(), "table1");
    }
    if run("table2") {
        let results = timed("Table 2", || table2::run(&params));
        emit(&results.to_table(), "table2");
    }
    if run("fig7") {
        emit(&figures::figure7(&[0.7, 0.8, 0.9], 25), "figure7");
    }
    if run("serving") {
        let report = timed("Serving", || serving::run(&params));
        println!("{}", report.to_table().render());
        let path = goggles::experiments::report::results_dir().join("BENCH_serving.json");
        match report.write_json(&path) {
            Ok(()) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
        }
    }
    if run("affinity") {
        let report = timed("Affinity kernel", || affinity_bench::run(&params));
        println!("{}", report.to_table().render());
        let path = goggles::experiments::report::results_dir().join("BENCH_affinity.json");
        match report.write_json(&path) {
            Ok(()) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
        }
    }
    if run("embed") {
        let report = timed("Embedding backbone", || embed_bench::run(&params));
        println!("{}", report.to_table().render());
        let path = goggles::experiments::report::results_dir().join("BENCH_embed.json");
        match report.write_json(&path) {
            Ok(()) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
        }
    }
    if run("fit") {
        let report = timed("Continuous-learning fit", || fit_bench::run(&params));
        println!("{}", report.to_table().render());
        let path = goggles::experiments::report::results_dir().join("BENCH_fit.json");
        match report.write_json(&path) {
            Ok(()) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
        }
    }
    // The data-driven figures share one CUB context.
    if run("fig2") || run("fig5") || run("fig8") || run("fig9") {
        let tasks = params.tasks_for_trial(0);
        let ctx = timed("build CUB context", || TrialContext::build(&params, &tasks[0], 0));
        if run("fig2") {
            emit(&figures::figure2(&ctx, 10).to_table(), "figure2");
        }
        if run("fig5") {
            emit(&figures::figure5(&ctx), "figure5");
        }
        if run("fig8") {
            let series = figures::figure8(&ctx, &[0, 1, 2, 3, 4, 5, 8, 10], 0xF18);
            emit(
                &figures::sweep_table(
                    "Figure 8 (CUB): accuracy vs dev size per class",
                    "d",
                    &series,
                ),
                "figure8_cub",
            );
        }
        if run("fig9") {
            let series = figures::figure9(&ctx, &[1, 2, 5, 10, 20, 30, 50], 0xF19);
            emit(
                &figures::sweep_table(
                    "Figure 9 (CUB): accuracy vs number of affinity functions",
                    "alpha",
                    &series,
                ),
                "figure9_cub",
            );
        }
    }
}

//! Attribute-annotation labeling functions for the CUB task (§5.1.2).
//!
//! "We combine CUB's image-level attribute annotations … with the
//! class-level attribute information provided … each attribute annotation in
//! the union of the class-specific attributes acts as a labeling function
//! which outputs a binary label corresponding to the class that the
//! attribute belongs to. If an attribute belongs to both classes from the
//! class-pair, the labeling function abstains."

use crate::lf::{LabelMatrix, ABSTAIN};
use crate::Result;
use goggles_datasets::cub::CubAttributes;

/// Build the Snorkel vote matrix for a CUB task from its attribute
/// annotations. Rows align with the dataset's training block.
///
/// For every attribute `a` owned by exactly one of the two classes, the LF
/// votes that class on images annotated with `a` and abstains otherwise.
/// Attributes owned by both or neither class are skipped (they'd always
/// abstain).
pub fn attribute_label_matrix(attrs: &CubAttributes) -> Result<LabelMatrix> {
    let n = attrs.image_attributes.len();
    let num_attrs = attrs.class_attributes[0].len();
    // Attribute → owning class, when unique.
    let mut lf_defs: Vec<(usize, usize)> = Vec::new(); // (attribute, class)
    for a in 0..num_attrs {
        let in0 = attrs.class_attributes[0][a];
        let in1 = attrs.class_attributes[1][a];
        match (in0, in1) {
            (true, false) => lf_defs.push((a, 0)),
            (false, true) => lf_defs.push((a, 1)),
            _ => {} // both or neither → always abstains, skip
        }
    }
    let m = lf_defs.len();
    let mut votes = Vec::with_capacity(n * m);
    for img_attrs in &attrs.image_attributes {
        for &(a, class) in &lf_defs {
            votes.push(if img_attrs[a] { class as i64 } else { ABSTAIN });
        }
    }
    LabelMatrix::new(n, m, 2, votes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snorkel::SnorkelModel;
    use goggles_datasets::cub;
    use goggles_datasets::{generate, TaskConfig, TaskKind};

    fn cub_dataset(seed: u64) -> (goggles_datasets::Dataset, CubAttributes) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 3, class_b: 117 }, 25, 3, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let attrs = cub::attributes_for(&ds, seed);
        (ds, attrs)
    }

    #[test]
    fn lf_count_matches_distinct_attributes() {
        let (_, attrs) = cub_dataset(1);
        let lm = attribute_label_matrix(&attrs).unwrap();
        let distinct = (0..cub::NUM_ATTRIBUTES)
            .filter(|&a| attrs.class_attributes[0][a] != attrs.class_attributes[1][a])
            .count();
        assert_eq!(lm.num_lfs(), distinct);
        assert_eq!(lm.n(), 50);
    }

    #[test]
    fn votes_follow_attribute_ownership() {
        let (_, attrs) = cub_dataset(2);
        let lm = attribute_label_matrix(&attrs).unwrap();
        // Reconstruct lf defs the same way to cross-check a few votes.
        let mut defs = Vec::new();
        for a in 0..cub::NUM_ATTRIBUTES {
            match (attrs.class_attributes[0][a], attrs.class_attributes[1][a]) {
                (true, false) => defs.push((a, 0usize)),
                (false, true) => defs.push((a, 1usize)),
                _ => {}
            }
        }
        for (j, &(a, class)) in defs.iter().enumerate() {
            for i in 0..5 {
                let expect = if attrs.image_attributes[i][a] { class as i64 } else { ABSTAIN };
                assert_eq!(lm.vote(i, j), expect, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn snorkel_on_attribute_lfs_labels_cub_well() {
        // End-to-end §5.1.2: attribute LFs + generative model ≈ the paper's
        // Snorkel-on-CUB row (89.17% with real data; high here too since
        // annotations are 95% faithful).
        let (ds, attrs) = cub_dataset(3);
        let lm = attribute_label_matrix(&attrs).unwrap();
        let model = SnorkelModel::fit(&lm, 100, 1e-6).unwrap();
        let truth = ds.train_labels();
        let acc = model.hard_labels().iter().zip(&truth).filter(|(a, b)| a == b).count() as f64
            / truth.len() as f64;
        assert!(acc > 0.8, "Snorkel CUB accuracy = {acc}");
    }
}

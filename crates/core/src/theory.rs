//! Development-set size theory (§4.4, Theorem 1, Figure 7).
//!
//! Model: labeling accuracy is `η`; a dev example of class `k'` lands in the
//! correct cluster with probability `η` and in each of the `K−1` wrong
//! clusters with probability `ρ = (1−η)/(K−1)`. (The paper prints
//! `ρ = η/(K−1)` — a typo, since probabilities must sum to 1; DESIGN.md §5
//! records the erratum.) With `d` dev examples per class, class `k'` maps
//! correctly when its correct-cluster count **strictly** exceeds every other
//! cluster's count (Equation 18, ties excluded → a lower bound), and the
//! full mapping is correct with probability at least `∏_k P_l_{k'}`
//! (Theorem 1).
//!
//! Two implementations are provided: an exact enumerator (small `d·K`, used
//! for cross-checking) and the polynomial dynamic program the paper sketches
//! (Equations 22–23), which conditions on the correct-cluster count and
//! counts bounded compositions of the remainder.

/// `P_l_{k'}`: lower bound on the probability one class maps correctly,
/// computed by dynamic programming.
///
/// Conditions on the correct-cluster count `t`:
/// `Σ_t C(d,t) η^t (1−η)^{d−t} · P(all K−1 noise clusters < t | d−t trials)`,
/// where the inner factor is a bounded-occupancy multinomial probability
/// computed by a DP over clusters (`O(K d²)` per `t`).
///
/// # Panics
/// Panics unless `0 < eta < 1`, `k ≥ 2`, `d ≥ 1`.
pub fn p_class_correct(eta: f64, k: usize, d: usize) -> f64 {
    validate(eta, k, d);
    let m = k - 1; // noise clusters
    let mut total = 0.0f64;
    for t in 1..=d {
        let log_binom = ln_choose(d, t);
        let log_head = log_binom + t as f64 * eta.ln() + (d - t) as f64 * (1.0 - eta).ln();
        // P(every noise cluster count ≤ t-1 | d-t uniform trials over m).
        let tail = bounded_occupancy_prob(d - t, m, t - 1);
        total += log_head.exp() * tail;
    }
    total.min(1.0)
}

/// Exact enumeration of Equation 18 (multinomial over all count vectors).
/// Exponential in `K`; intended for tests and tiny instances.
pub fn p_class_correct_brute_force(eta: f64, k: usize, d: usize) -> f64 {
    validate(eta, k, d);
    let rho = (1.0 - eta) / (k - 1) as f64;
    let mut total = 0.0;
    // Enumerate counts of the K-1 noise clusters; the correct-cluster count
    // is the remainder.
    let mut counts = vec![0usize; k - 1];
    enumerate(&mut counts, 0, d, &mut |noise_counts: &[usize]| {
        let noise_sum: usize = noise_counts.iter().sum();
        let t = d - noise_sum;
        let max_noise = noise_counts.iter().copied().max().unwrap_or(0);
        if t <= max_noise {
            return; // not a strict winner
        }
        // multinomial probability
        let mut logp = ln_factorial(d) - ln_factorial(t);
        for &c in noise_counts {
            logp -= ln_factorial(c);
        }
        logp += t as f64 * eta.ln();
        logp += noise_sum as f64 * rho.ln();
        total += logp.exp();
    });
    total
}

/// Lower bound on the probability that **all** K classes map correctly
/// (Theorem 1, independence assumption).
pub fn p_mapping_correct(eta: f64, k: usize, d: usize) -> f64 {
    p_class_correct(eta, k, d).powi(k as i32)
}

/// Smallest per-class dev-set size `d*` whose Theorem-1 bound reaches
/// probability `p`, and the total size `m* = K·d*`. Returns `None` if no
/// `d ≤ max_d` suffices (e.g. η too close to chance).
pub fn min_dev_set_size(eta: f64, k: usize, p: f64, max_d: usize) -> Option<(usize, usize)> {
    assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
    (1..=max_d).find(|&d| p_mapping_correct(eta, k, d) >= p).map(|d| (d, k * d))
}

/// The Figure 7 curve: `P(correct mapping)` for `d = 1..=max_d`.
// goggles-lint: allow(dead-pub): reproduces the paper's Figure 7 accuracy-vs-alpha curve; exercised only by unit tests
pub fn figure7_curve(eta: f64, k: usize, max_d: usize) -> Vec<(usize, f64)> {
    (1..=max_d).map(|d| (d, p_mapping_correct(eta, k, d))).collect()
}

/// Probability that `trials` uniform throws into `m` bins leave **every**
/// bin with at most `cap` items — DP over bins using log-space binomial
/// convolution, `O(m · trials²)` worst case but tiny in practice.
fn bounded_occupancy_prob(trials: usize, m: usize, cap: usize) -> f64 {
    if trials == 0 {
        return 1.0;
    }
    if m == 0 {
        return 0.0; // items but nowhere to put them (cannot happen: k ≥ 2)
    }
    if cap >= trials {
        return 1.0;
    }
    if (cap + 1) * m < trials + 1 {
        // pigeonhole: some bin must exceed cap
        return 0.0;
    }
    // ways[j][r] = #ordered ways to place r labeled items into the first j
    // bins with each bin ≤ cap  (multinomial counting: Σ r!/(∏ c_i!)).
    // Work with w[j][r] = ways / r! to keep numbers small:
    // w[j][r] = Σ_{c=0..min(cap,r)} w[j-1][r-c] / c!.
    let mut w = vec![0.0f64; trials + 1];
    w[0] = 1.0;
    let inv_fact: Vec<f64> = {
        let mut v = vec![1.0f64; cap + 1];
        for c in 1..=cap {
            v[c] = v[c - 1] / c as f64;
        }
        v
    };
    for _ in 0..m {
        let mut next = vec![0.0f64; trials + 1];
        for r in 0..=trials {
            let mut acc = 0.0;
            for c in 0..=cap.min(r) {
                acc += w[r - c] * inv_fact[c];
            }
            next[r] = acc;
        }
        w = next;
    }
    // P = ways / m^trials = w[trials] · trials! / m^trials.
    let logp = w[trials].max(0.0).ln() + ln_factorial(trials) - trials as f64 * (m as f64).ln();
    logp.exp().clamp(0.0, 1.0)
}

fn validate(eta: f64, k: usize, d: usize) {
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0, 1), got {eta}");
    assert!(k >= 2, "need at least 2 classes");
    assert!(d >= 1, "need at least 1 dev example per class");
}

fn enumerate(counts: &mut Vec<usize>, idx: usize, remaining: usize, f: &mut impl FnMut(&[usize])) {
    if idx == counts.len() {
        f(counts);
        return;
    }
    for c in 0..=remaining {
        counts[idx] = c;
        enumerate(counts, idx + 1, remaining - c, f);
    }
    counts[idx] = 0;
}

fn ln_factorial(n: usize) -> f64 {
    (2..=n).map(|i| (i as f64).ln()).sum()
}

fn ln_choose(n: usize, k: usize) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2_reduces_to_binomial_majority() {
        // K=2: correct iff t > d - t, i.e. a strict binomial majority.
        let eta: f64 = 0.8;
        for d in [1usize, 3, 5, 10] {
            let expect: f64 = ((d / 2 + 1)..=d)
                .map(|t| {
                    (ln_choose(d, t) + (t as f64) * eta.ln() + ((d - t) as f64) * (0.2f64).ln())
                        .exp()
                })
                .sum();
            let got = p_class_correct(eta, 2, d);
            assert!((got - expect).abs() < 1e-10, "d={d}: {got} vs {expect}");
        }
    }

    #[test]
    fn dp_matches_brute_force() {
        for &k in &[2usize, 3, 4] {
            for &d in &[1usize, 2, 3, 5, 7] {
                for &eta in &[0.5f64, 0.7, 0.9] {
                    let dp = p_class_correct(eta, k, d);
                    let bf = p_class_correct_brute_force(eta, k, d);
                    assert!((dp - bf).abs() < 1e-9, "k={k} d={d} eta={eta}: dp {dp} vs brute {bf}");
                }
            }
        }
    }

    #[test]
    fn monotone_in_eta() {
        let ps: Vec<f64> =
            [0.55, 0.65, 0.75, 0.85, 0.95].iter().map(|&eta| p_class_correct(eta, 2, 9)).collect();
        assert!(ps.windows(2).all(|w| w[1] > w[0]), "{ps:?}");
    }

    #[test]
    fn single_perfect_cluster_example() {
        // §4.4: "we only need one labeled example" when clustering is
        // perfect — with η → 1, d = 1 already maps correctly a.s.
        let p = p_mapping_correct(0.999, 2, 1);
        assert!(p > 0.99, "p = {p}");
    }

    #[test]
    fn figure7_shape_eta08_k2() {
        // Paper: "when η = 0.8, only about 20 examples are required to
        // produce the correct cluster-class mapping with probability close
        // to 1" (20 total = 10 per class for K=2).
        let curve = figure7_curve(0.8, 2, 30);
        let at = |d: usize| curve[d - 1].1;
        assert!(at(1) < 0.9);
        // d = 10 per class = 20 total examples: "close to 1" per the paper.
        assert!(at(10) > 0.9, "P(d=10) = {}", at(10));
        assert!(at(25) > 0.98, "P(d=25) = {}", at(25));
        // Largely increasing in d (odd/even majority parity causes small
        // local plateaus, so compare 2 steps apart).
        for w in curve.windows(3) {
            assert!(w[2].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn min_dev_set_size_matches_curve() {
        let (d_star, m_star) = min_dev_set_size(0.8, 2, 0.95, 50).unwrap();
        assert_eq!(m_star, 2 * d_star);
        assert!(p_mapping_correct(0.8, 2, d_star) >= 0.95);
        if d_star > 1 {
            assert!(p_mapping_correct(0.8, 2, d_star - 1) < 0.95);
        }
        // Hopeless accuracy never reaches the bar.
        assert!(min_dev_set_size(0.51, 4, 0.999, 5).is_none());
    }

    #[test]
    fn mapping_bound_is_class_bound_to_the_k() {
        // Theorem 1's independence assumption: P(correct) = P_class^K, so
        // the joint bound can never exceed the per-class bound.
        for &k in &[2usize, 3, 4] {
            let pc = p_class_correct(0.75, k, 6);
            let pm = p_mapping_correct(0.75, k, 6);
            assert!((pm - pc.powi(k as i32)).abs() < 1e-12);
            assert!(pm <= pc + 1e-12);
        }
    }

    #[test]
    fn splitting_noise_across_more_clusters_helps_per_class() {
        // At fixed d per class the per-class bound *increases* with K: the
        // (1-η) error mass splits across K-1 clusters, so the correct
        // cluster wins a strict majority more easily.
        let p2 = p_class_correct(0.75, 2, 6);
        let p4 = p_class_correct(0.75, 4, 6);
        assert!(p4 > p2, "{p4} vs {p2}");
    }

    #[test]
    fn bounded_occupancy_edge_cases() {
        assert_eq!(bounded_occupancy_prob(0, 3, 0), 1.0);
        // 4 items, 3 bins, cap 1 → pigeonhole impossible
        assert_eq!(bounded_occupancy_prob(4, 3, 1), 0.0);
        // cap ≥ trials is always satisfied
        assert_eq!(bounded_occupancy_prob(3, 2, 3), 1.0);
        // 2 items, 2 bins, cap 1: both in different bins = 2/4
        assert!((bounded_occupancy_prob(2, 2, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_eta_one() {
        let _ = p_class_correct(1.0, 2, 5);
    }
}

//! Fitted-pipeline snapshots and out-of-sample inference.
//!
//! [`FittedLabeler`] freezes everything a labeling request needs:
//!
//! * the backbone *recipe* (`VggConfig` + seed — the network itself is
//!   deterministic, so it is rebuilt rather than serialized),
//! * the training corpus' [`PrototypeBank`] (per-layer stacked prototypes),
//! * each affinity function's fitted diagonal-GMM parameters,
//! * the Bernoulli-mixture ensemble parameters, and
//! * the dev-set cluster→class mapping.
//!
//! A request then costs `O(image)`: embed the incoming image, compute its
//! `1 × αN` affinity row against the stored prototypes, fold the row through
//! the stored base models and ensemble (`predict_proba`, **no refit**), and
//! apply the stored mapping. The training affinity matrix is never rebuilt.

use crate::codec::{fnv1a, Reader, Writer, MAX_SMALL_LEN};
use crate::{ServeError, ServeResult};
use goggles_cnn::{Vgg16, VggConfig};
use goggles_core::hierarchical::fold_in_rows;
use goggles_core::mapping::apply_mapping;
use goggles_core::prototypes::{embed_images, embed_images_with, EmbedScratch};
use goggles_core::{
    Goggles, GogglesConfig, HierarchicalModel, LabelingResult, ProbabilisticLabels, PrototypeBank,
};
use goggles_datasets::{Dataset, DevSet};
use goggles_models::{BernoulliMixture, DiagonalGmm, FitStats};
use goggles_tensor::Matrix;
use goggles_vision::Image;

/// Magic bytes of the snapshot container (shared by every version).
const MAGIC: &[u8; 8] = b"GGLSNAP\x01";
/// The original, fully self-describing f64 format.
const VERSION_V1: u32 = 1;
/// The compact schema-driven f32 format (optionally u16-quantized bank).
const VERSION_V2: u32 = 2;
/// v2 flag bit: the prototype bank payload is u16-quantized.
const V2_FLAG_QUANTIZED_BANK: u8 = 0b1;

/// On-disk snapshot format. The container header (magic + `u32` version)
/// negotiates the layout at load time; [`FittedLabeler::load`] accepts
/// every variant listed here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The original format: every parameter as `f64`, every structural
    /// integer as `u64`, shapes stored per matrix. Lossless — reloads are
    /// byte-exact — and byte-compatible with pre-v2 snapshots.
    V1,
    /// The compact format: GMM/ensemble parameters narrowed to `f32`,
    /// structural integers as `u32`, and shapes *derived from the header*
    /// instead of stored per matrix, so the artifact is strictly under half
    /// the v1 size. With `quantized_bank` the prototype bank is further
    /// squeezed to `u16` codes on a fixed `[-1, 1]` grid (prototype rows
    /// are L2-normalized, so the grid loses < 1.6e-5 per component).
    /// Lossy, but bounded: argmax labels are preserved and per-class
    /// probabilities move by far less than 1e-3 (see the serving bench).
    V2 {
        /// Quantize the prototype bank to u16 grid codes (halves the bank
        /// again on top of the f32 narrowing).
        quantized_bank: bool,
    },
}

/// Frozen `DiagonalGmm`: same parameters, no training-side responsibilities
/// (they are not part of the snapshot) and canonical stats — so labelers
/// built by `fit` and by `load` compare (and serialize) identically.
fn frozen_gmm(weights: Vec<f64>, means: Matrix<f64>, variances: Matrix<f64>) -> DiagonalGmm {
    let k = weights.len();
    DiagonalGmm {
        weights,
        means,
        variances,
        responsibilities: Matrix::zeros(0, k),
        stats: FitStats { log_likelihood: 0.0, iterations: 0, converged: true },
    }
}

/// Frozen `BernoulliMixture`, same convention as [`frozen_gmm`].
fn frozen_ensemble(weights: Vec<f64>, probs: Matrix<f64>) -> BernoulliMixture {
    let k = weights.len();
    BernoulliMixture {
        weights,
        probs,
        responsibilities: Matrix::zeros(0, k),
        stats: FitStats { log_likelihood: 0.0, iterations: 0, converged: true },
    }
}

/// Per-stage wall-clock breakdown of one labeling call, reported by
/// `FittedLabeler::label_batch_traced`. Durations are whole-batch, in
/// microseconds; they are measurements only and never feed back into the
/// computation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): return type of pub label_batch_traced; external callers reach it through inference
pub struct StageTiming {
    /// Backbone forward passes + max-pool tap extraction (im2col/GEMM).
    pub embed_us: u64,
    /// Affinity rows against the frozen prototype bank (colmax matmul).
    pub affinity_us: u64,
    /// End model: base-GMM posteriors, ensemble fold-in, class mapping.
    pub endmodel_us: u64,
}

/// A servable artifact: the frozen GOGGLES pipeline after fitting.
///
/// Obtain one with [`FittedLabeler::fit`] (or `FittedLabeler::from_fitted`
/// if you already ran the batch pipeline and kept the embeddings), persist
/// it with [`FittedLabeler::save`], and answer requests with
/// [`FittedLabeler::label_one`] / [`FittedLabeler::label_batch`].
#[derive(Debug, Clone)]
pub struct FittedLabeler {
    // --- serialized state ---
    vgg: VggConfig,
    backbone_seed: u64,
    top_z: usize,
    center_patches: bool,
    num_classes: usize,
    one_hot: bool,
    mapping: Vec<usize>,
    bank: PrototypeBank,
    /// Rehydrated once at construction/load time — `predict_proba`-ready,
    /// never rebuilt on the request path.
    base_models: Vec<DiagonalGmm>,
    ensemble: BernoulliMixture,
    // --- rebuilt on construction/load, never serialized ---
    net: Vgg16,
}

impl FittedLabeler {
    /// Fit the full GOGGLES pipeline on `dataset`'s training block and
    /// freeze it into a servable snapshot. Also returns the batch
    /// [`LabelingResult`] so callers can report training-set accuracy
    /// without re-running anything.
    pub fn fit(
        config: &GogglesConfig,
        dataset: &Dataset,
        dev: &DevSet,
    ) -> ServeResult<(Self, LabelingResult)> {
        let goggles = Goggles::new(config.clone());
        let images = dataset.train_images();
        if images.is_empty() {
            return Err(ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(
                "dataset has no training images".into(),
            )));
        }
        let embeddings = embed_images(
            goggles.backbone(),
            &images,
            config.top_z,
            config.threads,
            config.center_patches,
        );
        let bank = PrototypeBank::from_embeddings(&embeddings);
        let data = bank.affinity_rows(&embeddings, config.threads);
        let affinity = goggles_core::AffinityMatrix {
            data,
            n: bank.n,
            alpha: bank.alpha(),
            z_per_layer: bank.z_per_layer,
        };
        let result = goggles
            .label_dataset_with_affinity(dataset, &affinity, dev)
            .map_err(ServeError::Pipeline)?;
        let labeler = Self::from_fitted(&goggles, bank, &result.model, result.mapping.clone());
        Ok((labeler, result))
    }

    /// Freeze an already-fitted pipeline: the `Goggles` system it ran under,
    /// the prototype bank of the training corpus, the fitted hierarchical
    /// model and the dev-set mapping.
    pub(crate) fn from_fitted(
        goggles: &Goggles,
        bank: PrototypeBank,
        model: &HierarchicalModel,
        mapping: Vec<usize>,
    ) -> Self {
        let config = goggles.config();
        assert_eq!(
            bank.alpha(),
            model.alpha(),
            "prototype bank and model disagree on the number of affinity functions"
        );
        assert_eq!(bank.n, model.n_train(), "bank/model disagree on corpus size N");
        Self {
            vgg: config.vgg.clone(),
            backbone_seed: config.backbone_seed,
            top_z: config.top_z,
            center_patches: config.center_patches,
            num_classes: config.num_classes,
            one_hot: model.one_hot,
            mapping,
            bank,
            base_models: model
                .base_models
                .iter()
                .map(|g| frozen_gmm(g.weights.clone(), g.means.clone(), g.variances.clone()))
                .collect(),
            ensemble: frozen_ensemble(model.ensemble.weights.clone(), model.ensemble.probs.clone()),
            net: goggles.backbone().clone(),
        }
    }

    /// Bootstrap fit for the continuous-learning loop:
    /// [`FittedLabeler::fit`] that additionally hands back the training
    /// affinity rows (`N × αN`) and the dev set translated into row space,
    /// so a trainer can append incremental rows against the frozen bank and
    /// re-score candidates without rebuilding anything.
    pub fn fit_for_training(
        config: &GogglesConfig,
        dataset: &Dataset,
        dev: &DevSet,
    ) -> ServeResult<TrainingBootstrap> {
        let goggles = Goggles::new(config.clone());
        let images = dataset.train_images();
        if images.is_empty() {
            return Err(ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(
                "dataset has no training images".into(),
            )));
        }
        let embeddings = embed_images(
            goggles.backbone(),
            &images,
            config.top_z,
            config.threads,
            config.center_patches,
        );
        let bank = PrototypeBank::from_embeddings(&embeddings);
        let data = bank.affinity_rows(&embeddings, config.threads);
        let affinity = goggles_core::AffinityMatrix {
            data: data.clone(),
            n: bank.n,
            alpha: bank.alpha(),
            z_per_layer: bank.z_per_layer,
        };
        let result = goggles
            .label_dataset_with_affinity(dataset, &affinity, dev)
            .map_err(ServeError::Pipeline)?;
        let mut dev_rows = Vec::with_capacity(dev.len());
        for &idx in &dev.indices {
            let row = dataset.train_indices.iter().position(|&t| t == idx).ok_or_else(|| {
                ServeError::Pipeline(goggles_core::GogglesError::InvalidInput(format!(
                    "dev index {idx} not in the training block"
                )))
            })?;
            dev_rows.push(row);
        }
        let dev_rows = DevSet { indices: dev_rows, labels: dev.labels.clone() };
        let labeler = Self::from_fitted(&goggles, bank, &result.model, result.mapping.clone());
        Ok(TrainingBootstrap { labeler, result, rows: data, dev_rows })
    }

    /// Affinity rows (`m × αN`) for new images against the **frozen**
    /// prototype bank — the incremental-append path: embeddings are computed
    /// with the stored backbone recipe and each row is produced by exactly
    /// the same kernel the serving path uses, so appending these rows to the
    /// training matrix is bit-identical to having rebuilt it with the new
    /// images present (for the original rows; see the append proptest).
    pub fn affinity_rows_for(&self, images: &[&Image], threads: usize) -> Matrix<f64> {
        let embeddings = embed_images(&self.net, images, self.top_z, threads, self.center_patches);
        self.bank.affinity_rows(&embeddings, threads)
    }

    /// Rebuild a [`HierarchicalModel`] view of the frozen parameters (empty
    /// responsibilities, zero likelihood) — the warm-start seed when the
    /// trainer bootstraps from a loaded snapshot instead of an in-process
    /// fit.
    pub fn frozen_model(&self) -> HierarchicalModel {
        let k = self.num_classes;
        let alpha = self.base_models.len();
        HierarchicalModel {
            base_models: self.base_models.clone(),
            ensemble_input: Matrix::zeros(0, alpha * k),
            responsibilities: Matrix::zeros(0, k),
            ensemble: self.ensemble.clone(),
            one_hot: self.one_hot,
            log_likelihood: 0.0,
        }
    }

    /// A candidate labeler: this labeler's frozen backbone + prototype bank
    /// with **new** model parameters and mapping (from an incremental
    /// refit). Validates the combination before it can be published.
    pub fn with_models(
        &self,
        model: &HierarchicalModel,
        mapping: Vec<usize>,
    ) -> ServeResult<FittedLabeler> {
        let candidate = FittedLabeler {
            vgg: self.vgg.clone(),
            backbone_seed: self.backbone_seed,
            top_z: self.top_z,
            center_patches: self.center_patches,
            num_classes: self.num_classes,
            one_hot: model.one_hot,
            mapping,
            bank: self.bank.clone(),
            base_models: model
                .base_models
                .iter()
                .map(|g| frozen_gmm(g.weights.clone(), g.means.clone(), g.variances.clone()))
                .collect(),
            ensemble: frozen_ensemble(model.ensemble.weights.clone(), model.ensemble.probs.clone()),
            net: self.net.clone(),
        };
        candidate.validate()?;
        Ok(candidate)
    }

    /// Number of classes `K`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of affinity functions `α`.
    pub fn alpha(&self) -> usize {
        self.base_models.len()
    }

    /// Size `N` of the frozen training corpus.
    pub fn n_train(&self) -> usize {
        self.bank.n
    }

    /// The stored cluster→class mapping.
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// The frozen prototype bank.
    pub fn bank(&self) -> &PrototypeBank {
        &self.bank
    }

    /// Label a batch of new images. Per image this embeds it, computes its
    /// `1 × αN` affinity row against the stored prototypes and folds it
    /// through the stored models — no training-matrix rebuild, no refit.
    /// Returns class-aligned probabilistic labels (mapping applied).
    pub fn label_batch(&self, images: &[&Image], threads: usize) -> ProbabilisticLabels {
        self.label_batch_with(&mut EmbedScratch::new(), images, threads)
    }

    /// [`FittedLabeler::label_batch`] against a caller-owned
    /// [`EmbedScratch`]: a long-lived worker (each [`crate::LabelService`]
    /// thread holds one) reuses the backbone's im2col/GEMM/activation
    /// arenas across requests, so steady-state labeling allocates nothing
    /// on the embedding side beyond the per-image tap tensors. Output is
    /// identical to [`FittedLabeler::label_batch`] for any scratch history.
    pub(crate) fn label_batch_with(
        &self,
        scratch: &mut EmbedScratch,
        images: &[&Image],
        threads: usize,
    ) -> ProbabilisticLabels {
        self.label_batch_traced(scratch, images, threads).0
    }

    /// [`FittedLabeler::label_batch_with`] that additionally reports how
    /// long each internal stage took. The labels are computed by exactly
    /// the same calls in the same order — the only additions are three
    /// clock reads around them — so the output is bit-identical to the
    /// untraced path (the observability layer's core guarantee).
    pub(crate) fn label_batch_traced(
        &self,
        scratch: &mut EmbedScratch,
        images: &[&Image],
        threads: usize,
    ) -> (ProbabilisticLabels, StageTiming) {
        if images.is_empty() {
            return (
                ProbabilisticLabels { probs: Matrix::zeros(0, self.num_classes) },
                StageTiming::default(),
            );
        }
        let t0 = std::time::Instant::now();
        let embeddings =
            embed_images_with(&self.net, scratch, images, self.top_z, threads, self.center_patches);
        let t1 = std::time::Instant::now();
        let rows = self.bank.affinity_rows(&embeddings, threads);
        let t2 = std::time::Instant::now();
        let cluster_probs = self.fold_in(&rows);
        let labels = ProbabilisticLabels { probs: apply_mapping(&cluster_probs, &self.mapping) };
        let t3 = std::time::Instant::now();
        let timing = StageTiming {
            embed_us: t1.duration_since(t0).as_micros() as u64,
            affinity_us: t2.duration_since(t1).as_micros() as u64,
            endmodel_us: t3.duration_since(t2).as_micros() as u64,
        };
        (labels, timing)
    }

    /// Estimated backbone flops per labeled image — surfaced as the
    /// `goggles_backbone_flops_per_image` gauge so scrape-side tooling can
    /// turn embed-stage latency into effective GFLOP/s.
    pub(crate) fn backbone_flops_per_image(&self) -> u64 {
        self.net.forward_flops_per_image()
    }

    /// Label a single image; returns the argmax class and the full
    /// class-probability row. Single-threaded — see
    /// [`FittedLabeler::label_one_sharded`] for the intra-request parallel
    /// variant.
    pub fn label_one(&self, image: &Image) -> (usize, Vec<f64>) {
        self.label_one_sharded(image, 1)
    }

    /// Label a single image with an intra-request thread budget: the
    /// `1 × αN` affinity row against the stored bank is sharded across
    /// `threads` workers along the stacked `n·z` prototype axis, so one
    /// online request can saturate the machine instead of one core. Output
    /// is bit-identical for every thread count.
    pub fn label_one_sharded(&self, image: &Image, threads: usize) -> (usize, Vec<f64>) {
        let labels = self.label_batch(&[image], threads);
        let row = labels.probs.row(0).to_vec();
        (goggles_tensor::argmax(&row), row)
    }

    /// Fold precomputed affinity rows (`m × αN`) through the stored base
    /// models and ensemble: `predict_proba` all the way down, in cluster
    /// space (mapping **not** applied).
    pub(crate) fn fold_in(&self, rows: &Matrix<f64>) -> Matrix<f64> {
        fold_in_rows(&self.base_models, &self.ensemble, self.one_hot, rows)
    }

    /// Test-only: overwrite the stored mapping, to build corrupt labelers
    /// for validation tests in sibling modules.
    #[cfg(test)]
    pub(crate) fn set_mapping_for_tests(&mut self, mapping: Vec<usize>) {
        self.mapping = mapping;
    }

    // ------------------------------------------------------------------
    // persistence
    // ------------------------------------------------------------------

    /// Serialize to the **v1** (lossless, byte-exact) snapshot format —
    /// shorthand for `FittedLabeler::save_with(SnapshotFormat::V1)`.
    /// Deterministic: equal labelers produce identical bytes. For the
    /// compact format, use [`FittedLabeler::save_v2`].
    pub fn save(&self) -> Vec<u8> {
        self.save_with(SnapshotFormat::V1)
    }

    /// Serialize to the **v2** compact format (`quantized_bank` additionally
    /// squeezes the prototype bank to u16 grid codes). Shorthand for
    /// `FittedLabeler::save_with(SnapshotFormat::V2 { .. })`.
    ///
    /// # Panics
    /// v2 stores mapping entries as `u16`, so labelers with more than
    /// 65535 classes panic here — use [`FittedLabeler::save`] (v1) for such
    /// models.
    pub fn save_v2(&self, quantized_bank: bool) -> Vec<u8> {
        self.save_with(SnapshotFormat::V2 { quantized_bank })
    }

    /// Serialize to the chosen [`SnapshotFormat`]. All formats are
    /// deterministic and re-save stably: `save_with(f) → load → save_with(f)`
    /// is byte-for-byte identical for every `f` (f64→f32 narrowing and the
    /// fixed quantization grid are both idempotent).
    pub(crate) fn save_with(&self, format: SnapshotFormat) -> Vec<u8> {
        match format {
            SnapshotFormat::V1 => self.save_v1_impl(),
            SnapshotFormat::V2 { quantized_bank } => self.save_v2_impl(quantized_bank),
        }
    }

    /// The original self-describing f64 layout (kept byte-compatible with
    /// pre-v2 snapshots — do not reorder fields).
    fn save_v1_impl(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION_V1);
        // backbone recipe
        w.put_usize(self.vgg.input_channels);
        for &c in &self.vgg.block_channels {
            w.put_usize(c);
        }
        w.put_usize(self.vgg.input_size);
        for &d in &self.vgg.fc_dims {
            w.put_usize(d);
        }
        w.put_usize(self.vgg.logits_dim);
        w.put_u64(self.backbone_seed);
        // pipeline shape
        w.put_usize(self.top_z);
        w.put_bool(self.center_patches);
        w.put_usize(self.num_classes);
        w.put_bool(self.one_hot);
        w.put_usize_slice(&self.mapping);
        // prototype bank
        w.put_usize(self.bank.n);
        w.put_usize(self.bank.z_per_layer);
        w.put_usize(self.bank.stacked.len());
        for layer in &self.bank.stacked {
            w.put_matrix_f32(layer);
        }
        // base models
        w.put_usize(self.base_models.len());
        for bm in &self.base_models {
            w.put_f64_slice(&bm.weights);
            w.put_matrix_f64(&bm.means);
            w.put_matrix_f64(&bm.variances);
        }
        // ensemble
        w.put_f64_slice(&self.ensemble.weights);
        w.put_matrix_f64(&self.ensemble.probs);
        // integrity trailer
        let checksum = fnv1a(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// The compact schema-driven layout: `u32` structural integers, `f32`
    /// parameter payloads (optionally u16 for the bank), and **no per-matrix
    /// shape prefixes** — every shape is derived from the header
    /// (`K`, `N`, `Z`, layer count), which is what puts v2 strictly under
    /// half the v1 size.
    fn save_v2_impl(&self, quantized_bank: bool) -> Vec<u8> {
        assert!(self.num_classes <= u16::MAX as usize, "v2 stores mapping entries as u16");
        let mut w = Writer::new();
        w.put_bytes(MAGIC);
        w.put_u32(VERSION_V2);
        w.put_u8(if quantized_bank { V2_FLAG_QUANTIZED_BANK } else { 0 });
        // backbone recipe
        w.put_u32(self.vgg.input_channels as u32);
        for &c in &self.vgg.block_channels {
            w.put_u32(c as u32);
        }
        w.put_u32(self.vgg.input_size as u32);
        for &d in &self.vgg.fc_dims {
            w.put_u32(d as u32);
        }
        w.put_u32(self.vgg.logits_dim as u32);
        w.put_u64(self.backbone_seed);
        // pipeline shape
        w.put_u32(self.top_z as u32);
        w.put_bool(self.center_patches);
        w.put_u32(self.num_classes as u32);
        w.put_bool(self.one_hot);
        for &class in &self.mapping {
            w.put_u16(class as u16); // length implied: num_classes
        }
        // prototype bank: rows per layer implied (N·Z), only widths stored
        w.put_u32(self.bank.n as u32);
        w.put_u32(self.bank.z_per_layer as u32);
        w.put_u32(self.bank.stacked.len() as u32);
        for layer in &self.bank.stacked {
            w.put_u32(layer.cols() as u32);
            if quantized_bank {
                w.put_quantized_slice_raw(layer.as_slice());
            } else {
                w.put_f32_slice_raw(layer.as_slice());
            }
        }
        // base models: count implied (layers·Z), shapes implied (K × N)
        for bm in &self.base_models {
            w.put_f64_slice_as_f32_raw(&bm.weights);
            w.put_f64_slice_as_f32_raw(bm.means.as_slice());
            w.put_f64_slice_as_f32_raw(bm.variances.as_slice());
        }
        // ensemble: shapes implied (K and K × αK)
        w.put_f64_slice_as_f32_raw(&self.ensemble.weights);
        w.put_f64_slice_as_f32_raw(self.ensemble.probs.as_slice());
        // integrity trailer
        let checksum = fnv1a(w.as_bytes());
        w.put_u64(checksum);
        w.into_bytes()
    }

    /// Deserialize a snapshot produced by any [`SnapshotFormat`]: the
    /// header negotiates the layout, the decoded content is semantically
    /// validated ([`FittedLabeler::validate`]) and the frozen backbone is
    /// rebuilt. Codec-level damage (checksum, truncation, implausible
    /// lengths) surfaces as [`ServeError::Snapshot`]; content that decodes
    /// but is inconsistent surfaces as [`ServeError::Corrupt`].
    pub fn load(bytes: &[u8]) -> ServeResult<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(ServeError::Snapshot("snapshot too short".into()));
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = match <[u8; 8]>::try_from(trailer) {
            Ok(arr) => u64::from_le_bytes(arr),
            Err(_) => return Err(ServeError::Snapshot("truncated checksum trailer".into())),
        };
        let actual = fnv1a(payload);
        if stored != actual {
            return Err(ServeError::Snapshot(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let mut r = Reader::new(payload);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(ServeError::Snapshot("bad magic bytes".into()));
        }
        let version = r.get_u32()?;
        let parts = match version {
            VERSION_V1 => decode_v1(&mut r)?,
            VERSION_V2 => decode_v2(&mut r)?,
            v => {
                return Err(ServeError::Snapshot(format!(
                    "unsupported snapshot version {v} (supported: {VERSION_V1}, {VERSION_V2})"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(ServeError::Snapshot(format!(
                "{} trailing bytes after snapshot payload",
                r.remaining()
            )));
        }
        parts.into_labeler()
    }

    /// Semantic consistency check over the frozen state — everything a
    /// request will index into must line up **before** the labeler is
    /// allowed near traffic. Called by [`FittedLabeler::load`] and by
    /// [`crate::SnapshotRegistry::publish`], so a corrupted-but-checksummed
    /// (or hand-built) artifact is rejected with [`ServeError::Corrupt`]
    /// instead of panicking inside `apply_mapping` on the first request.
    pub fn validate(&self) -> ServeResult<()> {
        validate_parts(
            &self.vgg,
            self.top_z,
            self.num_classes,
            &self.mapping,
            &self.bank,
            &self.base_models,
            &self.ensemble,
        )
    }

    /// [`FittedLabeler::save`] straight to a file — **crash-safely**: the
    /// bytes go to a sibling `<name>.tmp`, are fsynced, and only then
    /// atomically renamed over `path`, so a reader (or a restart) never
    /// observes a half-written snapshot under the final name. A crash
    /// mid-write leaves only a `.tmp` orphan, which
    /// [`sweep_snapshot_dir`] quarantines at startup.
    pub fn save_to(&self, path: &std::path::Path) -> ServeResult<()> {
        write_atomic(path, &self.save())
    }

    /// [`FittedLabeler::load`] straight from a file.
    pub fn load_from(path: &std::path::Path) -> ServeResult<Self> {
        let bytes = std::fs::read(path)
            .map_err(|e| ServeError::Io(format!("reading {}: {e}", path.display())))?;
        Self::load(&bytes)
    }
}

/// Everything [`FittedLabeler::fit_for_training`] hands the trainer: the
/// servable snapshot, the batch labeling result (whose `model` seeds warm
/// restarts), the raw training affinity rows to append to, and the dev set
/// in affinity-row space for gate scoring.
#[derive(Debug, Clone)]
pub struct TrainingBootstrap {
    /// The frozen, servable labeler.
    pub labeler: FittedLabeler,
    /// Batch pipeline output (training-set labels, mapping, fitted model).
    pub result: LabelingResult,
    /// Training affinity rows, `N × αN` — the matrix the trainer grows.
    pub rows: Matrix<f64>,
    /// Dev set translated into row space of `rows`.
    pub dev_rows: DevSet,
}

/// Suffix appended to a file a [`sweep_snapshot_dir`] pass pulled out of
/// rotation (torn temp files, corrupt snapshots).
const QUARANTINE_SUFFIX: &str = ".quarantined";
/// Suffix of the sibling temp file [`FittedLabeler::save_to`] writes before
/// the atomic rename.
const TMP_SUFFIX: &str = ".tmp";

/// Crash-safe file write: bytes land in a sibling `<name>.tmp`, are fsynced
/// to disk, then atomically renamed over `path` (with a best-effort fsync
/// of the parent directory so the rename itself survives a crash). The
/// `snapshot.write` failpoint can fail the write or tear it — a torn write
/// leaves a truncated `.tmp` behind and never renames, exactly like a
/// crash mid-write.
fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> ServeResult<()> {
    use std::io::Write as _;
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return Err(ServeError::Io(format!("{} has no usable file name", path.display())));
    };
    let tmp = path.with_file_name(format!("{name}{TMP_SUFFIX}"));
    let mut payload = bytes;
    let mut torn = false;
    if crate::fault::enabled() {
        match crate::fault::inject_write("snapshot.write") {
            Some(crate::fault::WriteFault::Err(e)) => {
                return Err(ServeError::Io(format!("writing {}: {e}", tmp.display())));
            }
            Some(crate::fault::WriteFault::Torn) => {
                payload = &bytes[..bytes.len() / 2];
                torn = true;
            }
            None => {}
        }
    }
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| ServeError::Io(format!("creating {}: {e}", tmp.display())))?;
    file.write_all(payload)
        .map_err(|e| ServeError::Io(format!("writing {}: {e}", tmp.display())))?;
    file.sync_all().map_err(|e| ServeError::Io(format!("syncing {}: {e}", tmp.display())))?;
    drop(file);
    if torn {
        // Simulated crash mid-write: the truncated temp file stays on disk
        // (for the startup sweep to find) and the final name is untouched.
        return Err(ServeError::Io(format!(
            "injected torn write: {} left half-written",
            tmp.display()
        )));
    }
    std::fs::rename(&tmp, path).map_err(|e| {
        ServeError::Io(format!("renaming {} over {}: {e}", tmp.display(), path.display()))
    })?;
    if let Some(parent) = path.parent() {
        // Directory fsync is what makes the rename durable; not every
        // filesystem supports opening a directory, so this stays
        // best-effort.
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Outcome of a [`sweep_snapshot_dir`] pass.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Loadable snapshot files, newest first (by modification time, file
    /// name as tie-breaker) — `valid.first()` is the fall-back target.
    pub valid: Vec<std::path::PathBuf>,
    /// Files pulled out of rotation this pass (their new `.quarantined`
    /// names): orphaned `.tmp` files from interrupted writes and files that
    /// failed to load as a snapshot.
    pub quarantined: Vec<std::path::PathBuf>,
}

/// Startup sweep over a snapshot directory: quarantine torn and corrupt
/// files (rename to `<name>.quarantined`, preserving the evidence without
/// deleting anything), and report the surviving valid snapshots newest
/// first. Already-quarantined files and subdirectories are left alone.
/// Used by [`crate::SnapshotRegistry::reload_from`] (and the
/// `goggles-served` binary at startup) to fall back to the newest valid
/// version when the preferred snapshot is damaged.
pub fn sweep_snapshot_dir(dir: &std::path::Path) -> ServeResult<SweepReport> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ServeError::Io(format!("sweeping {}: {e}", dir.display())))?;
    let mut report = SweepReport::default();
    let mut valid: Vec<(std::time::SystemTime, std::path::PathBuf)> = Vec::new();
    for entry in entries {
        let entry = match entry {
            Ok(e) => e,
            Err(_) => continue, // raced deletion; nothing to sweep
        };
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()).map(str::to_owned) else {
            continue;
        };
        if !entry.file_type().is_ok_and(|t| t.is_file()) || name.ends_with(QUARANTINE_SUFFIX) {
            continue;
        }
        let broken = if name.ends_with(TMP_SUFFIX) {
            // An orphaned temp file is an interrupted write by
            // construction: save_to removes it on every successful rename.
            true
        } else {
            FittedLabeler::load_from(&path).is_err()
        };
        if broken {
            let target = path.with_file_name(format!("{name}{QUARANTINE_SUFFIX}"));
            std::fs::rename(&path, &target)
                .map_err(|e| ServeError::Io(format!("quarantining {}: {e}", path.display())))?;
            report.quarantined.push(target);
        } else {
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            valid.push((mtime, path));
        }
    }
    valid.sort_by(|a, b| b.cmp(a));
    report.valid = valid.into_iter().map(|(_, p)| p).collect();
    Ok(report)
}

/// Decoded-but-not-yet-validated snapshot content, shared by both format
/// decoders.
struct SnapshotParts {
    vgg: VggConfig,
    backbone_seed: u64,
    top_z: usize,
    center_patches: bool,
    num_classes: usize,
    one_hot: bool,
    mapping: Vec<usize>,
    bank: PrototypeBank,
    base_models: Vec<DiagonalGmm>,
    ensemble: BernoulliMixture,
}

impl SnapshotParts {
    /// Validate semantic consistency, then rebuild the frozen backbone.
    fn into_labeler(self) -> ServeResult<FittedLabeler> {
        validate_parts(
            &self.vgg,
            self.top_z,
            self.num_classes,
            &self.mapping,
            &self.bank,
            &self.base_models,
            &self.ensemble,
        )?;
        let net = Vgg16::new(&self.vgg, self.backbone_seed);
        Ok(FittedLabeler {
            vgg: self.vgg,
            backbone_seed: self.backbone_seed,
            top_z: self.top_z,
            center_patches: self.center_patches,
            num_classes: self.num_classes,
            one_hot: self.one_hot,
            mapping: self.mapping,
            bank: self.bank,
            base_models: self.base_models,
            ensemble: self.ensemble,
            net,
        })
    }
}

/// Decode the v1 payload (cursor positioned just past the version field).
/// Structural integers are read through the `MAX_SMALL_LEN` cap — same wire
/// bytes as the original unbounded reads, but a corrupt-but-checksummed
/// field can no longer smuggle in an implausible dimension.
fn decode_v1(r: &mut Reader<'_>) -> ServeResult<SnapshotParts> {
    let input_channels = r.get_len(MAX_SMALL_LEN)?;
    let mut block_channels = [0usize; 5];
    for c in &mut block_channels {
        *c = r.get_len(MAX_SMALL_LEN)?;
    }
    let input_size = r.get_len(MAX_SMALL_LEN)?;
    let mut fc_dims = [0usize; 2];
    for d in &mut fc_dims {
        *d = r.get_len(MAX_SMALL_LEN)?;
    }
    let logits_dim = r.get_len(MAX_SMALL_LEN)?;
    let vgg = VggConfig { input_channels, block_channels, input_size, fc_dims, logits_dim };
    let backbone_seed = r.get_u64()?;
    let top_z = r.get_len(MAX_SMALL_LEN)?;
    let center_patches = r.get_bool()?;
    let num_classes = r.get_len(MAX_SMALL_LEN)?;
    let one_hot = r.get_bool()?;
    let mapping = r.get_usize_slice()?;
    let n = r.get_len(MAX_SMALL_LEN)?;
    let z_per_layer = r.get_len(MAX_SMALL_LEN)?;
    let n_layers = r.get_len(MAX_SMALL_LEN)?;
    let mut stacked = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        stacked.push(r.get_matrix_f32()?);
    }
    let bank = PrototypeBank::from_stacked(stacked, n, z_per_layer)
        .map_err(|e| ServeError::Corrupt(e.to_string()))?;
    let n_models = r.get_len(MAX_SMALL_LEN)?;
    let mut base_models = Vec::with_capacity(n_models);
    for _ in 0..n_models {
        let weights = r.get_f64_slice()?;
        let means = r.get_matrix_f64()?;
        let variances = r.get_matrix_f64()?;
        base_models.push(frozen_gmm(weights, means, variances));
    }
    let ensemble = frozen_ensemble(r.get_f64_slice()?, r.get_matrix_f64()?);
    Ok(SnapshotParts {
        vgg,
        backbone_seed,
        top_z,
        center_patches,
        num_classes,
        one_hot,
        mapping,
        bank,
        base_models,
        ensemble,
    })
}

/// Decode the v2 payload (cursor positioned just past the version field).
/// Shapes are *derived* from the header, so the only attacker-controlled
/// lengths are the bounded header integers; every payload read is bounded
/// by the remaining byte count before allocating.
fn decode_v2(r: &mut Reader<'_>) -> ServeResult<SnapshotParts> {
    let flags = r.get_u8()?;
    if flags & !V2_FLAG_QUANTIZED_BANK != 0 {
        return Err(ServeError::Snapshot(format!("unknown v2 flag bits {flags:#04x}")));
    }
    let quantized_bank = flags & V2_FLAG_QUANTIZED_BANK != 0;
    let input_channels = r.get_len_u32(MAX_SMALL_LEN)?;
    let mut block_channels = [0usize; 5];
    for c in &mut block_channels {
        *c = r.get_len_u32(MAX_SMALL_LEN)?;
    }
    let input_size = r.get_len_u32(MAX_SMALL_LEN)?;
    let mut fc_dims = [0usize; 2];
    for d in &mut fc_dims {
        *d = r.get_len_u32(MAX_SMALL_LEN)?;
    }
    let logits_dim = r.get_len_u32(MAX_SMALL_LEN)?;
    let vgg = VggConfig { input_channels, block_channels, input_size, fc_dims, logits_dim };
    let backbone_seed = r.get_u64()?;
    let top_z = r.get_len_u32(MAX_SMALL_LEN)?;
    let center_patches = r.get_bool()?;
    let num_classes = r.get_len_u32(u16::MAX as usize)?;
    let one_hot = r.get_bool()?;
    if num_classes == 0 {
        return Err(ServeError::Corrupt("snapshot declares zero classes".into()));
    }
    let mut mapping = Vec::with_capacity(num_classes);
    for _ in 0..num_classes {
        mapping.push(r.get_u16()? as usize);
    }
    let n = r.get_len_u32(MAX_SMALL_LEN)?;
    let z_per_layer = r.get_len_u32(MAX_SMALL_LEN)?;
    let n_layers = r.get_len_u32(MAX_SMALL_LEN)?;
    let rows = checked_len(n, z_per_layer)?;
    let mut stacked = Vec::with_capacity(n_layers.min(64));
    for _ in 0..n_layers {
        let cols = r.get_len_u32(MAX_SMALL_LEN)?;
        let len = checked_len(rows, cols)?;
        let data = if quantized_bank { r.get_quantized_vec(len)? } else { r.get_f32_vec(len)? };
        stacked.push(
            Matrix::from_vec(rows, cols, data)
                .map_err(|e| ServeError::Snapshot(format!("bank layer decode: {e}")))?,
        );
    }
    let bank = PrototypeBank::from_stacked(stacked, n, z_per_layer)
        .map_err(|e| ServeError::Corrupt(e.to_string()))?;
    let alpha = bank.alpha();
    let kn = checked_len(num_classes, n)?;
    let mut base_models = Vec::with_capacity(alpha.min(1 << 12));
    for _ in 0..alpha {
        let weights = r.get_f32_vec_as_f64(num_classes)?;
        let means = Matrix::from_vec(num_classes, n, r.get_f32_vec_as_f64(kn)?)
            .map_err(|e| ServeError::Snapshot(format!("base-model decode: {e}")))?;
        let variances = Matrix::from_vec(num_classes, n, r.get_f32_vec_as_f64(kn)?)
            .map_err(|e| ServeError::Snapshot(format!("base-model decode: {e}")))?;
        base_models.push(frozen_gmm(weights, means, variances));
    }
    let ensemble_weights = r.get_f32_vec_as_f64(num_classes)?;
    let probs_cols = checked_len(alpha, num_classes)?;
    let probs_len = checked_len(num_classes, probs_cols)?;
    let probs = Matrix::from_vec(num_classes, probs_cols, r.get_f32_vec_as_f64(probs_len)?)
        .map_err(|e| ServeError::Snapshot(format!("ensemble decode: {e}")))?;
    let ensemble = frozen_ensemble(ensemble_weights, probs);
    Ok(SnapshotParts {
        vgg,
        backbone_seed,
        top_z,
        center_patches,
        num_classes,
        one_hot,
        mapping,
        bank,
        base_models,
        ensemble,
    })
}

/// Overflow-checked product of two decoded dimensions.
fn checked_len(a: usize, b: usize) -> ServeResult<usize> {
    a.checked_mul(b)
        .ok_or_else(|| ServeError::Snapshot(format!("dimension product {a}·{b} overflows")))
}

/// Upper bound on the rebuilt backbone's parameter count. A
/// corrupted-but-checksummed recipe must be rejected here, not discovered
/// as a multi-gigabyte allocation (or an assert) inside `Vgg16::new`.
const MAX_BACKBONE_PARAMS: u64 = 1 << 28;

/// Parameter count the recipe implies (mirrors `Vgg16::new`'s allocation:
/// conv stacks + the three-layer head). `None` on arithmetic overflow.
fn backbone_param_cost(vgg: &VggConfig) -> Option<u64> {
    let mut total: u64 = 0;
    let mut in_c = vgg.input_channels as u64;
    for (b, &out_c) in vgg.block_channels.iter().enumerate() {
        let out_c = out_c as u64;
        let convs = VggConfig::CONVS_PER_BLOCK[b] as u64;
        let first = in_c.checked_mul(out_c)?.checked_mul(9)?.checked_add(out_c)?;
        let rest =
            out_c.checked_mul(out_c)?.checked_mul(9)?.checked_add(out_c)?.checked_mul(convs - 1)?;
        total = total.checked_add(first)?.checked_add(rest)?;
        in_c = out_c;
    }
    // head: flattened final pool map → fc0 → fc1 → logits
    let s = (vgg.input_size >> 5) as u64;
    let flat = (vgg.block_channels[4] as u64).checked_mul(s.checked_mul(s)?)?;
    let dims = [flat, vgg.fc_dims[0] as u64, vgg.fc_dims[1] as u64, vgg.logits_dim as u64];
    for w in dims.windows(2) {
        total = total.checked_add(w[0].checked_mul(w[1])?)?.checked_add(w[1])?;
    }
    Some(total)
}

/// The semantic consistency rules every servable labeler must satisfy
/// (shared by [`FittedLabeler::load`] and [`FittedLabeler::validate`]).
fn validate_parts(
    vgg: &VggConfig,
    top_z: usize,
    num_classes: usize,
    mapping: &[usize],
    bank: &PrototypeBank,
    base_models: &[DiagonalGmm],
    ensemble: &BernoulliMixture,
) -> ServeResult<()> {
    // The backbone recipe is rebuilt with `Vgg16::new`, which asserts its
    // geometry and allocates weights proportional to the recipe — both must
    // be pre-checked so a corrupt snapshot errs instead of panicking/OOMing.
    if vgg.input_size < 32 || !vgg.input_size.is_power_of_two() {
        return Err(ServeError::Corrupt(format!(
            "backbone input_size {} is not a power of two ≥ 32",
            vgg.input_size
        )));
    }
    if vgg.input_channels == 0
        || vgg.block_channels.contains(&0)
        || vgg.fc_dims.contains(&0)
        || vgg.logits_dim == 0
    {
        return Err(ServeError::Corrupt("backbone recipe has a zero dimension".into()));
    }
    match backbone_param_cost(vgg) {
        Some(params) if params <= MAX_BACKBONE_PARAMS => {}
        _ => {
            return Err(ServeError::Corrupt(format!(
                "backbone recipe implies an implausible parameter count (cap {MAX_BACKBONE_PARAMS})"
            )))
        }
    }
    if num_classes == 0 {
        return Err(ServeError::Corrupt("labeler declares zero classes".into()));
    }
    // `mapping` must be a *permutation* of 0..K: length K, all entries in
    // range, no duplicates. A duplicate entry (previously unchecked) leaves
    // one class column unwritten and silently mislabels; an out-of-range
    // entry panics with an index-out-of-bounds inside `apply_mapping`.
    if mapping.len() != num_classes {
        return Err(ServeError::Corrupt(format!(
            "mapping has {} entries for {num_classes} classes",
            mapping.len()
        )));
    }
    let mut seen = vec![false; num_classes];
    for (cluster, &class) in mapping.iter().enumerate() {
        if class >= num_classes {
            return Err(ServeError::Corrupt(format!(
                "mapping[{cluster}] = {class} is not a class (K = {num_classes}); \
                 mapping must be a permutation of 0..{num_classes}"
            )));
        }
        if seen[class] {
            return Err(ServeError::Corrupt(format!(
                "mapping assigns class {class} to two clusters; \
                 mapping must be a permutation of 0..{num_classes}"
            )));
        }
        seen[class] = true;
    }
    if bank.n == 0 || bank.z_per_layer == 0 || bank.stacked.is_empty() {
        return Err(ServeError::Corrupt("prototype bank is empty".into()));
    }
    let bank_rows = checked_len(bank.n, bank.z_per_layer)
        .map_err(|_| ServeError::Corrupt("bank shape N·Z overflows".into()))?;
    for (l, layer) in bank.stacked.iter().enumerate() {
        if layer.rows() != bank_rows || layer.cols() == 0 {
            return Err(ServeError::Corrupt(format!(
                "bank layer {l} is {}×{}; expected N·Z = {}·{} = {bank_rows} rows",
                layer.rows(),
                layer.cols(),
                bank.n,
                bank.z_per_layer,
            )));
        }
    }
    // Prototype extraction on the request path pads to exactly `top_z` rows
    // per layer, so the recipe's Z and the bank's Z must agree; a corrupt
    // `top_z` would otherwise load cleanly and blow up (or allocate
    // `top_z × C`) on the first request.
    if top_z != bank.z_per_layer {
        return Err(ServeError::Corrupt(format!(
            "top_z = {top_z} disagrees with the bank's Z = {}",
            bank.z_per_layer
        )));
    }
    if base_models.len() != bank.alpha() {
        return Err(ServeError::Corrupt(format!(
            "{} base models but bank encodes α = {}",
            base_models.len(),
            bank.alpha()
        )));
    }
    for (f, bm) in base_models.iter().enumerate() {
        if bm.weights.len() != num_classes
            || bm.means.shape() != (num_classes, bank.n)
            || bm.variances.shape() != (num_classes, bank.n)
        {
            return Err(ServeError::Corrupt(format!("base model {f} has inconsistent shapes")));
        }
    }
    if ensemble.weights.len() != num_classes
        || ensemble.probs.rows() != num_classes
        || ensemble.probs.cols() != base_models.len() * num_classes
    {
        return Err(ServeError::Corrupt("ensemble parameter shapes inconsistent".into()));
    }
    Ok(())
}

impl PartialEq for FittedLabeler {
    /// Equality over the serialized state (the rebuilt backbone is a pure
    /// function of it; model comparison covers exactly the persisted
    /// parameters).
    fn eq(&self, other: &Self) -> bool {
        self.vgg == other.vgg
            && self.backbone_seed == other.backbone_seed
            && self.top_z == other.top_z
            && self.center_patches == other.center_patches
            && self.num_classes == other.num_classes
            && self.one_hot == other.one_hot
            && self.mapping == other.mapping
            && self.bank == other.bank
            && self.base_models.len() == other.base_models.len()
            && self.base_models.iter().zip(&other.base_models).all(|(a, b)| {
                a.weights == b.weights && a.means == b.means && a.variances == b.variances
            })
            && self.ensemble.weights == other.ensemble.weights
            && self.ensemble.probs == other.ensemble.probs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_datasets::{generate, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, LabelingResult, Dataset, DevSet) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 10, 6, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, result) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, result, ds, dev)
    }

    #[test]
    fn fit_matches_batch_pipeline_exactly() {
        // FittedLabeler::fit reuses the same affinity path as the batch
        // pipeline, so its LabelingResult must be identical.
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 10, 4, 3);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, 3);
        let gcfg = GogglesConfig { seed: 1, ..GogglesConfig::fast() };
        let (_, via_serve) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        let batch = Goggles::new(gcfg).label_dataset(&ds, &dev).unwrap();
        assert_eq!(via_serve.labels.hard_labels(), batch.labels.hard_labels());
        assert_eq!(via_serve.mapping, batch.mapping);
        assert!(via_serve.labels.probs.max_abs_diff(&batch.labels.probs) < 1e-12);
    }

    #[test]
    fn save_is_byte_for_byte_deterministic() {
        let (labeler, _, _, _) = fitted(1);
        let a = labeler.save();
        let b = labeler.save();
        assert_eq!(a, b);
        let reloaded = FittedLabeler::load(&a).unwrap();
        assert_eq!(reloaded, labeler);
        assert_eq!(reloaded.save(), a, "save→load→save must be stable");
    }

    #[test]
    fn reload_preserves_label_batch_exactly() {
        let (labeler, _, ds, _) = fitted(2);
        let test_images = ds.test_images();
        let before = labeler.label_batch(&test_images, 2);
        let reloaded = FittedLabeler::load(&labeler.save()).unwrap();
        let after = reloaded.label_batch(&test_images, 2);
        assert_eq!(before.probs, after.probs);
    }

    #[test]
    fn label_one_agrees_with_label_batch() {
        let (labeler, _, ds, _) = fitted(4);
        let imgs = ds.test_images();
        let batch = labeler.label_batch(&imgs, 1);
        for (i, img) in imgs.iter().enumerate() {
            let (hard, row) = labeler.label_one(img);
            assert_eq!(row, batch.probs.row(i));
            assert_eq!(hard, goggles_tensor::argmax(batch.probs.row(i)));
        }
    }

    #[test]
    fn out_of_sample_rows_are_distributions() {
        let (labeler, _, ds, _) = fitted(5);
        let labels = labeler.label_batch(&ds.test_images(), 2);
        assert_eq!(labels.probs.shape(), (ds.test_indices.len(), 2));
        for i in 0..labels.probs.rows() {
            let s: f64 = labels.probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // empty batch is well-defined
        let empty = labeler.label_batch(&[], 4);
        assert_eq!(empty.probs.shape(), (0, 2));
    }

    #[test]
    fn out_of_sample_path_on_training_images_matches_batch_labels() {
        // Serving the *training* images through the snapshot re-embeds them,
        // recomputes their affinity rows against the stored prototypes and
        // folds in — which must agree with the batch pipeline's converged
        // posteriors on those same rows.
        let (labeler, result, ds, _) = fitted(6);
        assert_eq!(labeler.alpha(), 20, "fast() config has α = 5·4");
        let served = labeler.label_batch(&ds.train_images(), 2);
        assert_eq!(served.probs.rows(), labeler.n_train());
        let diff = served.probs.max_abs_diff(&result.labels.probs);
        assert!(diff < 1e-6, "served vs batch posterior diff = {diff}");
        assert_eq!(served.hard_labels(), result.labels.hard_labels());
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let (labeler, _, _, _) = fitted(7);
        let bytes = labeler.save();
        // flip one payload byte → checksum failure
        let mut bad = bytes.clone();
        bad[MAGIC.len() + 10] ^= 0x40;
        assert!(matches!(FittedLabeler::load(&bad), Err(ServeError::Snapshot(_))));
        // truncation → error, not panic
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(FittedLabeler::load(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // bad magic
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        assert!(FittedLabeler::load(&wrong).is_err());
    }

    /// Recompute the FNV-1a trailer after editing payload bytes in place —
    /// produces corrupted-but-checksummed artifacts for validation tests.
    fn rechecksum(bytes: &mut [u8]) {
        let n = bytes.len();
        let c = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&c.to_le_bytes());
    }

    #[test]
    fn v2_is_compact_lossy_bounded_and_argmax_preserving() {
        let (labeler, _, ds, _) = fitted(9);
        let v1 = labeler.save();
        let expected = labeler.label_batch(&ds.test_images(), 1);
        for quantized in [false, true] {
            let v2 = labeler.save_v2(quantized);
            assert!(v2.len() < v1.len(), "v2 (q={quantized}) must be smaller than v1");
            let reloaded = FittedLabeler::load(&v2).unwrap();
            let served = reloaded.label_batch(&ds.test_images(), 1);
            let dev = served.probs.max_abs_diff(&expected.probs);
            assert!(dev < 1e-3, "v2 (q={quantized}) probability deviation {dev}");
            assert_eq!(served.hard_labels(), expected.hard_labels(), "q={quantized}");
        }
        // quantized v2 must be at most half the v1 artifact (the schema
        // derives shapes from the header, so overhead shrinks too)
        let v2q = labeler.save_v2(true);
        assert!(
            2 * v2q.len() <= v1.len(),
            "quantized v2 is {} bytes vs v1 {} — more than 50%",
            v2q.len(),
            v1.len()
        );
    }

    #[test]
    fn v2_save_load_save_is_byte_stable() {
        // f64→f32 narrowing and the fixed quantization grid are both
        // idempotent, so a republished v2 artifact is byte-identical.
        let (labeler, _, _, _) = fitted(10);
        for quantized in [false, true] {
            let bytes = labeler.save_v2(quantized);
            assert_eq!(bytes, labeler.save_v2(quantized), "save_v2 must be deterministic");
            let reloaded = FittedLabeler::load(&bytes).unwrap();
            assert_eq!(reloaded.save_v2(quantized), bytes, "q={quantized}");
        }
    }

    #[test]
    fn corrupt_mapping_is_rejected_at_load_not_served() {
        // A hand-built snapshot whose mapping is not a permutation passes
        // the checksum but must fail load/validate with `Corrupt` — it used
        // to reach `apply_mapping` and mislabel (duplicate) or panic
        // (out of range) on the first request.
        let (labeler, _, _, _) = fitted(12);
        let mut bad = labeler.clone();
        bad.mapping = vec![0, 0]; // duplicate: class 1 never written
        assert!(matches!(bad.validate(), Err(ServeError::Corrupt(_))));
        for format in [SnapshotFormat::V1, SnapshotFormat::V2 { quantized_bank: true }] {
            let bytes = bad.save_with(format);
            match FittedLabeler::load(&bytes) {
                Err(ServeError::Corrupt(msg)) => {
                    assert!(msg.contains("permutation"), "unexpected message: {msg}")
                }
                other => panic!("{format:?}: expected Corrupt, got {other:?}"),
            }
        }
        let mut oob = labeler.clone();
        oob.mapping = vec![0, 7]; // out of range: would index-OOB in apply_mapping
        assert!(matches!(oob.validate(), Err(ServeError::Corrupt(_))));
        assert!(matches!(FittedLabeler::load(&oob.save()), Err(ServeError::Corrupt(_))));
        // the genuine labeler validates clean
        labeler.validate().unwrap();
    }

    #[test]
    fn corrupt_backbone_recipe_is_rejected_not_rebuilt() {
        // A checksummed snapshot whose backbone recipe is stomped must err
        // at validation — not panic inside `Vgg16::new`'s geometry asserts
        // or allocate an implausible weight tensor.
        let (labeler, _, _, _) = fitted(20);
        // v1 input_size lives at offset 60 (magic 8 + version 4 +
        // input_channels 8 + block_channels 40); guard the offset map.
        let bytes = labeler.save();
        assert_eq!(u64::from_le_bytes(bytes[60..68].try_into().unwrap()), 32);
        let mut bad = bytes.clone();
        bad[60..68].copy_from_slice(&33u64.to_le_bytes()); // not a power of two
        rechecksum(&mut bad);
        assert!(matches!(FittedLabeler::load(&bad), Err(ServeError::Corrupt(_))));
        // huge-but-capped channel count → implausible parameter total
        let mut fat = bytes.clone();
        fat[20..28].copy_from_slice(&(MAX_SMALL_LEN as u64).to_le_bytes());
        rechecksum(&mut fat);
        assert!(matches!(FittedLabeler::load(&fat), Err(ServeError::Corrupt(_))));
        // same stomp on the v2 header (input_size u32 at offset 37)
        let v2 = labeler.save_v2(true);
        assert_eq!(u32::from_le_bytes(v2[37..41].try_into().unwrap()), 32);
        let mut bad2 = v2.clone();
        bad2[37..41].copy_from_slice(&33u32.to_le_bytes());
        rechecksum(&mut bad2);
        assert!(matches!(FittedLabeler::load(&bad2), Err(ServeError::Corrupt(_))));
    }

    #[test]
    fn corrupt_top_z_is_rejected_at_load_not_first_request() {
        // top_z drives the per-request prototype extraction; a stomped value
        // used to load cleanly and blow up on the first request.
        let (labeler, _, _, _) = fitted(21);
        let bytes = labeler.save();
        // v1 top_z lives at offset 100 (after the 92-byte recipe + seed)
        assert_eq!(u64::from_le_bytes(bytes[100..108].try_into().unwrap()), 4);
        // plausible-but-wrong value → caught by the bank consistency check
        let mut bad = bytes.clone();
        bad[100..108].copy_from_slice(&12345u64.to_le_bytes());
        rechecksum(&mut bad);
        match FittedLabeler::load(&bad) {
            Err(ServeError::Corrupt(msg)) => assert!(msg.contains("top_z"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // implausibly huge value → caught by the structural cap
        let mut huge = bytes;
        huge[100..108].copy_from_slice(&u64::MAX.to_le_bytes());
        rechecksum(&mut huge);
        assert!(matches!(FittedLabeler::load(&huge), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn unsupported_version_is_negotiated_away() {
        let (labeler, _, _, _) = fitted(13);
        let mut bytes = labeler.save();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&3u32.to_le_bytes());
        rechecksum(&mut bytes);
        match FittedLabeler::load(&bytes) {
            Err(ServeError::Snapshot(msg)) => {
                assert!(msg.contains("unsupported snapshot version 3"), "{msg}")
            }
            other => panic!("expected Snapshot error, got {other:?}"),
        }
        // unknown v2 flag bits are rejected too
        let mut v2 = labeler.save_v2(false);
        v2[MAGIC.len() + 4] |= 0b1000_0000;
        rechecksum(&mut v2);
        assert!(matches!(FittedLabeler::load(&v2), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn v2_corrupted_snapshots_are_rejected() {
        let (labeler, _, _, _) = fitted(14);
        for quantized in [false, true] {
            let bytes = labeler.save_v2(quantized);
            // bit flip → checksum failure
            let mut bad = bytes.clone();
            bad[MAGIC.len() + 20] ^= 0x10;
            assert!(matches!(FittedLabeler::load(&bad), Err(ServeError::Snapshot(_))));
            // truncation → error, not panic
            for cut in [0, 13, bytes.len() / 3, bytes.len() - 1] {
                assert!(FittedLabeler::load(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn file_round_trip() {
        let (labeler, _, ds, _) = fitted(8);
        let dir = std::env::temp_dir().join("goggles_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.ggl");
        labeler.save_to(&path).unwrap();
        let reloaded = FittedLabeler::load_from(&path).unwrap();
        let imgs = ds.test_images();
        assert_eq!(labeler.label_batch(&imgs, 1).probs, reloaded.label_batch(&imgs, 1).probs);
        std::fs::remove_file(&path).ok();
    }
}

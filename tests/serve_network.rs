//! Integration tests of the network front: loopback round trips through
//! `WireServer` + `RemoteLabeler` must be bit-identical to in-process
//! inference, remote hot-reload must swap versions under live load, and
//! the ticket lifecycle (deadlines, cancellation, non-blocking polls) must
//! behave the same across the wire as in-process.

use goggles::prelude::*;
use goggles::serve::ServeError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn fixture(seed: u64) -> (FittedLabeler, Dataset) {
    let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 6, seed);
    cfg.image_size = 32;
    let ds = generate(&cfg);
    let dev = ds.sample_dev_set(3, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).unwrap();
    (labeler, ds)
}

fn spawn_stack(
    labeler: FittedLabeler,
    config: ServeConfig,
) -> (Arc<LabelService>, WireServer, RemoteLabeler) {
    let service = Arc::new(LabelService::spawn(labeler, config));
    let server = WireServer::bind("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
    let client = RemoteLabeler::connect(server.local_addr()).unwrap();
    (service, server, client)
}

#[test]
fn loopback_answers_are_bit_identical_to_in_process_label_one() {
    let (labeler, ds) = fixture(71);
    let (_service, _server, client) = spawn_stack(labeler.clone(), ServeConfig::default());
    for (i, img) in ds.test_images().iter().enumerate() {
        let (expected_label, expected_probs) = labeler.label_one(img);
        let resp = client.label(img).unwrap();
        assert_eq!(resp.label, expected_label, "image {i}");
        assert_eq!(resp.probs, expected_probs, "image {i}: probs must be bit-identical");
        assert_eq!(resp.version, 1, "image {i}: served by the initial version");
    }
}

#[test]
fn pipelined_label_all_matches_and_batches() {
    let (labeler, ds) = fixture(72);
    let expected = labeler.label_batch(&ds.test_images(), 1);
    let (service, _server, client) = spawn_stack(
        labeler,
        ServeConfig {
            workers: 1,
            max_batch: 4,
            batch_timeout: Duration::from_millis(10),
            ..ServeConfig::default()
        },
    );
    let responses = client.label_all(&ds.test_images()).unwrap();
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.probs, expected.probs.row(i), "request {i}");
    }
    // All requests were on the wire before the first reply was awaited, so
    // the single connection must have fed the micro-batcher real batches.
    let stats = service.stats();
    assert_eq!(stats.requests, ds.test_indices.len() as u64);
    assert!(
        stats.batches < stats.requests,
        "pipelining produced only singleton batches ({} batches / {} requests)",
        stats.batches,
        stats.requests
    );
    // The remote stats op reports the same counters (plus the histogram).
    let remote = client.stats().unwrap();
    assert_eq!(remote.version, 1);
    assert_eq!(remote.stats.requests, stats.requests);
    assert_eq!(remote.stats.latency.total(), stats.requests);
    assert!(remote.stats.p99_latency_us() >= remote.stats.p50_latency_us());
}

#[test]
fn remote_reload_swaps_versions_under_load_and_prunes_the_registry() {
    let (labeler, ds) = fixture(73);
    let swapped = FittedLabeler::load(&labeler.save_v2(true)).unwrap();
    let images: Vec<Image> = ds.test_images().iter().map(|img| (*img).clone()).collect();
    let expected_v1 = labeler.label_batch(&ds.test_images(), 1);
    let expected_v2 = swapped.label_batch(&ds.test_images(), 1);

    let dir = std::env::temp_dir().join("goggles_remote_reload_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("snapshot_v2.ggl");
    std::fs::write(&snap_path, labeler.save_v2(true)).unwrap();

    let (service, server, client) = spawn_stack(
        labeler,
        ServeConfig {
            workers: 2,
            max_batch: 4,
            batch_timeout: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    // Concurrent remote clients hammer the server while the reload lands.
    let keep_running = Arc::new(AtomicBool::new(true));
    let clients: Vec<_> = (0..2)
        .map(|c| {
            let addr = server.local_addr();
            let keep_running = Arc::clone(&keep_running);
            let images = images.clone();
            let expected_v1 = expected_v1.probs.clone();
            let expected_v2 = expected_v2.probs.clone();
            std::thread::spawn(move || {
                let client = RemoteLabeler::connect(addr).unwrap();
                let mut rounds = 0u64;
                while keep_running.load(Ordering::Relaxed) || rounds < 2 {
                    for (i, img) in images.iter().enumerate() {
                        let resp = client
                            .label(img)
                            .unwrap_or_else(|e| panic!("client {c} request {i} errored: {e}"));
                        match resp.version {
                            1 => assert_eq!(resp.probs, expected_v1.row(i), "req {i} on v1"),
                            2 => assert_eq!(resp.probs, expected_v2.row(i), "req {i} on v2"),
                            v => panic!("response from unpublished version {v}"),
                        }
                    }
                    rounds += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    // The swap, driven over the wire.
    let version = client.reload(snap_path.to_str().unwrap()).unwrap();
    assert_eq!(version, 2);
    std::thread::sleep(Duration::from_millis(20));
    keep_running.store(false, Ordering::Relaxed);
    for c in clients {
        c.join().expect("load client must not panic");
    }
    // Post-swap answers serve version 2 bit-exactly.
    for (i, img) in images.iter().enumerate() {
        let resp = client.label(img).unwrap();
        assert_eq!(resp.version, 2, "post-swap request {i}");
        assert_eq!(resp.probs, expected_v2.probs.row(i), "post-swap request {i}");
    }
    assert_eq!(service.stats().failed_requests, 0, "the swap must not drop requests");

    // Reload twice more: `reload_from` prunes retired versions (keeping
    // the rollback target), so the registry stays bounded.
    assert_eq!(client.reload(snap_path.to_str().unwrap()).unwrap(), 3);
    assert_eq!(client.reload(snap_path.to_str().unwrap()).unwrap(), 4);
    let versions = service.registry().versions();
    assert!(
        versions.len() <= 3,
        "registry must stay bounded under repeated reloads, got {versions:?}"
    );
    // A reload of a garbage file errs remotely and leaves serving intact.
    let bad_path = dir.join("garbage.ggl");
    std::fs::write(&bad_path, b"junk").unwrap();
    assert!(client.reload(bad_path.to_str().unwrap()).is_err());
    assert_eq!(client.label(&images[0]).unwrap().version, 4);
    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&bad_path).ok();
}

/// Pull the value of a single-sample family (no labels) out of a
/// Prometheus text exposition.
fn scrape_value(text: &str, family: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(family))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Sum every sample of a labeled counter family (e.g. all `result=` series
/// of `goggles_requests_total`).
fn scrape_family_sum(text: &str, family: &str) -> f64 {
    text.lines()
        .filter(|l| {
            !l.starts_with('#')
                && l.split(['{', ' ']).next() == Some(family)
                && !l.starts_with(&format!("{family}_"))
        })
        .filter_map(|l| l.split_whitespace().last())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

#[test]
fn remote_metrics_scrape_matches_in_process_registry() {
    let (labeler, ds) = fixture(80);
    let (service, _server, client) = spawn_stack(
        labeler,
        ServeConfig { workers: 1, batch_timeout: Duration::ZERO, ..ServeConfig::default() },
    );
    let n = ds.test_indices.len() as u64;
    client.label_all(&ds.test_images()).unwrap();

    let remote = client.metrics().unwrap();
    let local = service.render_metrics();
    // Both renders come from the same registry; spot-check that the remote
    // scrape carries the same families and counter values. (Full string
    // equality would be racy: the wire spans themselves record between the
    // two renders.)
    for family in ["goggles_requests_total", "goggles_stage_latency_us", "goggles_snapshot_version"]
    {
        assert!(remote.contains(family), "remote scrape missing {family}:\n{remote}");
        assert!(local.contains(family), "local render missing {family}:\n{local}");
    }
    assert_eq!(scrape_value(&remote, "goggles_snapshot_version"), Some(1.0));
    assert_eq!(
        scrape_family_sum(&remote, "goggles_requests_total"),
        n as f64,
        "remote requests_total must equal the requests served:\n{remote}"
    );
    assert_eq!(
        scrape_family_sum(&remote, "goggles_requests_total"),
        scrape_family_sum(&local, "goggles_requests_total"),
    );
    // The wire path itself is instrumented: the remote scrape travelled the
    // protocol, so decode/encode spans must have samples by now.
    let decode_count =
        scrape_value(&remote, "goggles_stage_latency_us_count{stage=\"wire_decode\"}");
    assert!(decode_count.unwrap_or(0.0) >= n as f64, "wire_decode span missing:\n{remote}");
    assert_eq!(service.stats().requests, n);
}

#[test]
fn remote_deadlines_resolve_to_deadline_error_without_labeling() {
    let (labeler, ds) = fixture(74);
    let (service, _server, client) = spawn_stack(labeler, ServeConfig::default());
    let img = ds.test_images()[0];
    // Client-side expiry: resolved locally.
    let expired = client
        .submit_with_deadline(
            Arc::new(img.clone()),
            Some(Instant::now() - Duration::from_millis(1)),
        )
        .unwrap()
        .wait();
    assert!(matches!(expired, Err(ServeError::Deadline)), "got {expired:?}");
    // Server-side expiry: the budget survives the wire but dies in the
    // queue (tiny budget, real image) — the batcher answers Deadline.
    let outcome = client
        .submit_with_deadline(
            Arc::new(img.clone()),
            Some(Instant::now() + Duration::from_micros(30)),
        )
        .unwrap()
        .wait();
    assert!(matches!(outcome, Err(ServeError::Deadline)), "got {outcome:?}");
    assert_eq!(service.stats().requests, 0, "expired requests must never be labeled");
    assert!(service.stats().deadline_expired >= 1);
    // A sane deadline still gets labeled.
    let ok = client
        .submit_with_deadline(Arc::new(img.clone()), Some(Instant::now() + Duration::from_secs(30)))
        .unwrap()
        .wait();
    assert!(ok.is_ok(), "got {ok:?}");
}

#[test]
fn remote_tickets_poll_and_server_survives_client_disconnect() {
    let (labeler, ds) = fixture(75);
    let (_service, server, client) = spawn_stack(labeler.clone(), ServeConfig::default());
    let img = ds.test_images()[0];
    // Non-blocking poll loop over the wire.
    let mut ticket = client.submit(Arc::new(img.clone())).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let outcome = loop {
        if let Some(outcome) = ticket.poll() {
            break outcome;
        }
        assert!(Instant::now() < deadline, "remote ticket never resolved");
        std::thread::yield_now();
    };
    let (expected_label, expected_probs) = labeler.label_one(img);
    let resp = outcome.unwrap();
    assert_eq!((resp.label, resp.probs), (expected_label, expected_probs));
    // Abrupt client disconnect with a request possibly in flight: the
    // server must keep serving new connections.
    let rude = RemoteLabeler::connect(server.local_addr()).unwrap();
    let _ = rude.submit(Arc::new(img.clone())).unwrap();
    drop(rude);
    let again = RemoteLabeler::connect(server.local_addr()).unwrap();
    assert!(again.label(img).is_ok(), "server must survive a rude disconnect");
}

#[test]
fn shutdown_op_completes_while_other_clients_stay_connected() {
    // Regression: a second, idle client keeps its connection open across
    // the shutdown op. The server must close it and wind down anyway —
    // it used to park in read_frame on the idle connection and never join.
    let (labeler, ds) = fixture(77);
    let (_service, server, client) = spawn_stack(labeler, ServeConfig::default());
    let idle = RemoteLabeler::connect(server.local_addr()).unwrap();
    assert!(idle.label(ds.test_images()[0]).is_ok());
    client.shutdown_server().unwrap();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let waiter = std::thread::spawn(move || {
        server.wait();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server.wait() hung on the idle client's open connection");
    waiter.join().unwrap();
    // The idle client observes the closed connection as an error, not a hang.
    assert!(idle.label(ds.test_images()[0]).is_err());
}

#[test]
fn server_drop_completes_while_a_client_is_still_connected() {
    // Regression companion: dropping the server (e.g. unwinding) with a
    // live client connected must also not hang the join.
    let (labeler, ds) = fixture(78);
    let (_service, server, client) = spawn_stack(labeler, ServeConfig::default());
    assert!(client.label(ds.test_images()[0]).is_ok());
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let dropper = std::thread::spawn(move || {
        drop(server); // client intentionally still connected
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("drop(WireServer) hung on the live connection");
    dropper.join().unwrap();
    assert!(client.label(ds.test_images()[0]).is_err());
}

#[test]
fn oversized_image_fails_its_request_but_not_the_connection() {
    // An image whose wire payload exceeds the 64 MiB frame cap must be
    // rejected client-side with a descriptive error — writing it would get
    // the whole pipelined connection dropped by the server's framing layer.
    let (labeler, ds) = fixture(79);
    let (_service, _server, client) = spawn_stack(labeler, ServeConfig::default());
    let huge = Image::filled(64, 600, 600, 0.1); // 64·600·600·4 B ≈ 92 MB payload
    match client.label(&huge) {
        Err(ServeError::Wire(msg)) => assert!(msg.contains("frame cap"), "{msg}"),
        other => panic!("expected a Wire error for the oversized image, got {other:?}"),
    }
    assert!(client.label(ds.test_images()[0]).is_ok(), "connection must stay usable");
}

#[test]
fn client_errs_cleanly_when_server_goes_away() {
    let (labeler, ds) = fixture(76);
    let (_service, server, client) = spawn_stack(labeler, ServeConfig::default());
    let img = ds.test_images()[0];
    assert!(client.label(img).is_ok());
    client.shutdown_server().unwrap();
    server.wait();
    // Subsequent calls must error (Closed / Io), never hang or panic.
    let outcome = client.label(img);
    assert!(outcome.is_err(), "labeling after server shutdown must fail, got {outcome:?}");
}

//! Affinity-kernel benchmark: single-row latency (m = 1, the online serving
//! case) and batch build throughput of the blocked fused matmul +
//! column-max path (`goggles_tensor::colmax_matmul_f32` + intra-request
//! `n·z` sharding) versus the pre-blocking scalar reference
//! (`PrototypeBank::affinity_rows_reference`) at identical geometry.
//!
//! Not a paper artifact — Equation 2 is the paper's math either way — but
//! the direct quantification of the ROADMAP "Perf" item: `fill_row` is the
//! serving hot path, and this reports exactly what blocking and sharding
//! buy on it.

use super::report::Table;
use super::RunParams;
use goggles_core::prototypes::embed_images;
use goggles_core::{Goggles, PrototypeBank};
use goggles_datasets::{generate, TaskConfig, TaskKind};
use std::hint::black_box;
use std::time::Instant;

/// Everything one affinity-kernel benchmark run measured.
#[derive(Debug, Clone)]
pub struct AffinityBenchReport {
    /// Stored training images `N` in the prototype bank.
    pub n_train: usize,
    /// Affinity functions `α = layers · Z`.
    pub alpha: usize,
    /// Thread budget of the sharded/batch measurements.
    pub threads: usize,
    /// Median latency of one `1 × αN` row on the scalar reference path, ms.
    pub single_naive_ms: f64,
    /// Median latency of one row on the blocked kernel, 1 thread, ms.
    pub single_blocked_1t_ms: f64,
    /// Median latency of one row, blocked kernel + `n·z` sharding across
    /// `threads`, ms.
    pub single_sharded_ms: f64,
    /// Full-batch (`m = N`) build wall-clock on the reference path, seconds.
    pub batch_naive_s: f64,
    /// Full-batch build wall-clock on the blocked path with `threads`,
    /// seconds.
    pub batch_blocked_s: f64,
    /// Largest elementwise disagreement between the two paths over the full
    /// batch (must stay within the 1e-5 kernel tolerance).
    pub max_abs_diff: f64,
}

impl AffinityBenchReport {
    /// Single-request speedup of the sharded blocked path over the scalar
    /// reference (the acceptance number: ≥ 2× on ≥ 4 threads).
    pub fn single_speedup(&self) -> f64 {
        if self.single_sharded_ms <= 0.0 {
            return 0.0;
        }
        self.single_naive_ms / self.single_sharded_ms
    }

    /// Batch-build speedup of the blocked path over the scalar reference.
    pub fn batch_speedup(&self) -> f64 {
        if self.batch_blocked_s <= 0.0 {
            return 0.0;
        }
        self.batch_naive_s / self.batch_blocked_s
    }

    /// Rows per second of the blocked full-batch build.
    pub fn batch_rows_per_s(&self) -> f64 {
        if self.batch_blocked_s <= 0.0 {
            return 0.0;
        }
        self.n_train as f64 / self.batch_blocked_s
    }

    /// Text table for the bench harness.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            "Affinity hot path: blocked kernel vs scalar reference",
            &["metric", "value"],
        );
        let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
        row("bank size (N)", format!("{}", self.n_train));
        row("affinity functions (alpha)", format!("{}", self.alpha));
        row("thread budget", format!("{}", self.threads));
        row("single row, scalar reference", format!("{:.3} ms", self.single_naive_ms));
        row("single row, blocked 1 thread", format!("{:.3} ms", self.single_blocked_1t_ms));
        row("single row, blocked + sharded", format!("{:.3} ms", self.single_sharded_ms));
        row("single-row speedup vs reference", format!("{:.1}×", self.single_speedup()));
        row("batch build, scalar reference", format!("{:.3} s", self.batch_naive_s));
        row("batch build, blocked", format!("{:.3} s", self.batch_blocked_s));
        row("batch speedup vs reference", format!("{:.1}×", self.batch_speedup()));
        row("batch throughput", format!("{:.0} rows/s", self.batch_rows_per_s()));
        row("max |blocked - reference|", format!("{:.2e}", self.max_abs_diff));
        t
    }

    /// Hand-rolled JSON summary (the `BENCH_affinity.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"n_train\": {},\n  \"alpha\": {},\n  \"threads\": {},\n  \
             \"single_naive_ms\": {:.4},\n  \"single_blocked_1t_ms\": {:.4},\n  \
             \"single_sharded_ms\": {:.4},\n  \"single_speedup\": {:.2},\n  \
             \"batch_naive_s\": {:.6},\n  \"batch_blocked_s\": {:.6},\n  \
             \"batch_speedup\": {:.2},\n  \"batch_rows_per_s\": {:.1},\n  \
             \"max_abs_diff\": {:.3e}\n}}\n",
            self.n_train,
            self.alpha,
            self.threads,
            self.single_naive_ms,
            self.single_blocked_1t_ms,
            self.single_sharded_ms,
            self.single_speedup(),
            self.batch_naive_s,
            self.batch_blocked_s,
            self.batch_speedup(),
            self.batch_rows_per_s(),
            self.max_abs_diff,
        )
    }

    /// Write the JSON artifact.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Median wall-clock of `reps` calls to `f`, in milliseconds (one warmup
/// call excluded).
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Run the affinity-kernel benchmark at the given scale parameters.
pub fn run(params: &RunParams) -> AffinityBenchReport {
    let seed = 17u64;
    let mut task = TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        params.n_train_per_class,
        params.n_test_per_class.max(4),
        seed,
    );
    task.image_size = params.image_size;
    let ds = generate(&task);
    let config = params.goggles_config(seed);
    let goggles = Goggles::new(config.clone());
    let images = ds.train_images();
    let embeddings = embed_images(
        goggles.backbone(),
        &images,
        config.top_z,
        config.threads,
        config.center_patches,
    );
    let bank = PrototypeBank::from_embeddings(&embeddings);
    // The acceptance number is the m = 1 speedup on ≥ 4 threads, so grant
    // at least that budget even on smaller machines (there the sharded
    // figure shows the fan-out overhead is tolerated, not true scaling).
    let threads = config.threads.max(4);

    // Correctness cross-check before timing anything.
    let reference = bank.affinity_rows_reference(&embeddings);
    let blocked = bank.affinity_rows(&embeddings, threads);
    let max_abs_diff = blocked.max_abs_diff(&reference);

    let query = &embeddings[..1];
    let reps = 15;
    let single_naive_ms = median_ms(reps, || bank.affinity_rows_reference(query));
    let single_blocked_1t_ms = median_ms(reps, || bank.affinity_rows(query, 1));
    let single_sharded_ms = median_ms(reps, || bank.affinity_rows(query, threads));

    let batch_naive_s = median_ms(3, || bank.affinity_rows_reference(&embeddings)) / 1e3;
    let batch_blocked_s = median_ms(3, || bank.affinity_rows(&embeddings, threads)) / 1e3;

    AffinityBenchReport {
        n_train: bank.n,
        alpha: bank.alpha(),
        threads,
        single_naive_ms,
        single_blocked_1t_ms,
        single_sharded_ms,
        batch_naive_s,
        batch_blocked_s,
        max_abs_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_balanced_and_complete() {
        let report = AffinityBenchReport {
            n_train: 48,
            alpha: 30,
            threads: 4,
            single_naive_ms: 2.0,
            single_blocked_1t_ms: 1.0,
            single_sharded_ms: 0.4,
            batch_naive_s: 0.096,
            batch_blocked_s: 0.024,
            max_abs_diff: 3e-7,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "n_train",
            "alpha",
            "threads",
            "single_naive_ms",
            "single_sharded_ms",
            "single_speedup",
            "batch_speedup",
            "batch_rows_per_s",
            "max_abs_diff",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!((report.single_speedup() - 5.0).abs() < 1e-9);
        assert!((report.batch_speedup() - 4.0).abs() < 1e-9);
        assert!((report.batch_rows_per_s() - 2000.0).abs() < 1e-6);
        assert!(report.to_table().render().contains("rows/s"));
    }

    #[test]
    fn degenerate_timings_do_not_divide_by_zero() {
        let report = AffinityBenchReport {
            n_train: 1,
            alpha: 1,
            threads: 1,
            single_naive_ms: 0.0,
            single_blocked_1t_ms: 0.0,
            single_sharded_ms: 0.0,
            batch_naive_s: 0.0,
            batch_blocked_s: 0.0,
            max_abs_diff: 0.0,
        };
        assert_eq!(report.single_speedup(), 0.0);
        assert_eq!(report.batch_speedup(), 0.0);
        assert_eq!(report.batch_rows_per_s(), 0.0);
    }

    #[test]
    fn median_ms_is_positive_and_finite() {
        let v = median_ms(3, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(v.is_finite() && v >= 0.0);
    }
}

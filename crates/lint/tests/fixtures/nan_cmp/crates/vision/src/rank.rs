//! Fixture: NaN-panicking comparator (nan-cmp is workspace-wide).

pub fn sort_scores(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

//! Trainable heads over frozen backbone features.
//!
//! [`SoftmaxHead`] is plain multinomial logistic regression;
//! [`MlpHead`] adds one ReLU hidden layer — the analogue of "freezing the
//! convolutional layers of the VGG-16 model and only updating the weights of
//! the fully connected layers" (§5.1.4). Both minimize the **expected**
//! cross-entropy under probabilistic labels,
//! `θ̂ = argmin_θ Σ_i E_{y∼ỹ_i}[ℓ(h_θ(x_i), y)]` (§2.1), which reduces to
//! cross-entropy against the soft label vector.

use crate::adam::Adam;
use goggles_tensor::rng::{normal, std_rng};
use goggles_tensor::{log_sum_exp, Matrix};

/// Training configuration shared by the heads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Adam learning rate (paper: 1e-3).
    pub learning_rate: f64,
    /// Full-batch epochs.
    pub epochs: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Init seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { learning_rate: 1e-3, epochs: 300, weight_decay: 1e-4, seed: 0 }
    }
}

/// Multinomial logistic-regression head.
#[derive(Debug, Clone)]
pub struct SoftmaxHead {
    /// Flat parameters: `K × d` weights then `K` biases.
    params: Vec<f64>,
    dim: usize,
    k: usize,
    /// Training-loss trace (one entry per epoch).
    pub loss_trace: Vec<f64>,
}

impl SoftmaxHead {
    /// Train on `features` (`n × d`) with probabilistic labels (`n × K`).
    pub fn train(features: &Matrix<f64>, soft_labels: &Matrix<f64>, cfg: &TrainConfig) -> Self {
        let (n, d) = features.shape();
        let k = soft_labels.cols();
        assert_eq!(soft_labels.rows(), n, "label rows must match features");
        assert!(n > 0 && d > 0 && k >= 2, "degenerate training problem");
        let mut rng = std_rng(cfg.seed);
        let mut params: Vec<f64> = (0..k * d).map(|_| 0.01 * normal(&mut rng)).collect();
        params.extend(std::iter::repeat_n(0.0, k));
        let mut opt = Adam::new(params.len(), cfg.learning_rate);
        let mut grads = vec![0.0f64; params.len()];
        let mut loss_trace = Vec::with_capacity(cfg.epochs);
        let mut logits = vec![0.0f64; k];
        for _ in 0..cfg.epochs {
            grads.fill(0.0);
            let mut loss = 0.0;
            for i in 0..n {
                let x = features.row(i);
                forward_linear(&params, x, d, k, &mut logits);
                let lse = log_sum_exp(&logits);
                let y = soft_labels.row(i);
                for c in 0..k {
                    let p = (logits[c] - lse).exp();
                    loss -= y[c] * (logits[c] - lse);
                    let err = p - y[c];
                    let wg = &mut grads[c * d..(c + 1) * d];
                    for (g, &xv) in wg.iter_mut().zip(x) {
                        *g += err * xv;
                    }
                    grads[k * d + c] += err;
                }
            }
            let inv_n = 1.0 / n as f64;
            for (g, p) in grads.iter_mut().zip(params.iter()) {
                *g = *g * inv_n + cfg.weight_decay * p;
            }
            loss_trace.push(loss * inv_n);
            opt.step(&mut params, &grads);
        }
        Self { params, dim: d, k, loss_trace }
    }

    /// Class probabilities for each feature row.
    pub fn predict_proba(&self, features: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(features.cols(), self.dim);
        let mut out = Matrix::<f64>::zeros(features.rows(), self.k);
        let mut logits = vec![0.0f64; self.k];
        for (i, x) in features.rows_iter().enumerate() {
            forward_linear(&self.params, x, self.dim, self.k, &mut logits);
            let lse = log_sum_exp(&logits);
            for c in 0..self.k {
                out[(i, c)] = (logits[c] - lse).exp();
            }
        }
        out
    }

    /// Hard predictions.
    pub fn predict(&self, features: &Matrix<f64>) -> Vec<usize> {
        let p = self.predict_proba(features);
        (0..p.rows()).map(|i| goggles_tensor::argmax(p.row(i))).collect()
    }
}

#[inline]
fn forward_linear(params: &[f64], x: &[f64], d: usize, k: usize, logits: &mut [f64]) {
    for c in 0..k {
        let w = &params[c * d..(c + 1) * d];
        let mut acc = params[k * d + c];
        for (&wv, &xv) in w.iter().zip(x) {
            acc += wv * xv;
        }
        logits[c] = acc;
    }
}

/// One-hidden-layer MLP head (ReLU), trained with backprop + Adam on the
/// expected cross-entropy.
#[derive(Debug, Clone)]
pub struct MlpHead {
    /// Flat parameters: `h × d` (W1), `h` (b1), `K × h` (W2), `K` (b2).
    params: Vec<f64>,
    dim: usize,
    hidden: usize,
    k: usize,
    /// Training-loss trace.
    pub loss_trace: Vec<f64>,
}

impl MlpHead {
    /// Train with `hidden` ReLU units.
    pub fn train(
        features: &Matrix<f64>,
        soft_labels: &Matrix<f64>,
        hidden: usize,
        cfg: &TrainConfig,
    ) -> Self {
        let (n, d) = features.shape();
        let k = soft_labels.cols();
        assert_eq!(soft_labels.rows(), n);
        assert!(n > 0 && d > 0 && k >= 2 && hidden > 0, "degenerate problem");
        let mut rng = std_rng(cfg.seed);
        let he1 = (2.0 / d as f64).sqrt();
        let he2 = (2.0 / hidden as f64).sqrt();
        let mut params: Vec<f64> = Vec::with_capacity(hidden * d + hidden + k * hidden + k);
        params.extend((0..hidden * d).map(|_| he1 * normal(&mut rng)));
        params.extend(std::iter::repeat_n(0.0, hidden));
        params.extend((0..k * hidden).map(|_| he2 * normal(&mut rng)));
        params.extend(std::iter::repeat_n(0.0, k));
        let n_params = params.len();
        let mut opt = Adam::new(n_params, cfg.learning_rate);
        let mut grads = vec![0.0f64; n_params];
        let mut loss_trace = Vec::with_capacity(cfg.epochs);
        let mut h_act = vec![0.0f64; hidden];
        let mut logits = vec![0.0f64; k];
        let mut dh = vec![0.0f64; hidden];
        let (w1_end, b1_end) = (hidden * d, hidden * d + hidden);
        let w2_end = b1_end + k * hidden;
        for _ in 0..cfg.epochs {
            grads.fill(0.0);
            let mut loss = 0.0;
            for i in 0..n {
                let x = features.row(i);
                // forward
                for h in 0..hidden {
                    let w = &params[h * d..(h + 1) * d];
                    let mut acc = params[w1_end + h];
                    for (&wv, &xv) in w.iter().zip(x) {
                        acc += wv * xv;
                    }
                    h_act[h] = acc.max(0.0);
                }
                for c in 0..k {
                    let w = &params[b1_end + c * hidden..b1_end + (c + 1) * hidden];
                    let mut acc = params[w2_end + c];
                    for (&wv, &hv) in w.iter().zip(&h_act) {
                        acc += wv * hv;
                    }
                    logits[c] = acc;
                }
                let lse = log_sum_exp(&logits);
                let y = soft_labels.row(i);
                dh.fill(0.0);
                for c in 0..k {
                    let p = (logits[c] - lse).exp();
                    loss -= y[c] * (logits[c] - lse);
                    let err = p - y[c];
                    let w2 = &params[b1_end + c * hidden..b1_end + (c + 1) * hidden];
                    let g2 = &mut grads[b1_end + c * hidden..b1_end + (c + 1) * hidden];
                    for ((g, &hv), (&wv, dhv)) in
                        g2.iter_mut().zip(&h_act).zip(w2.iter().zip(dh.iter_mut()))
                    {
                        *g += err * hv;
                        *dhv += err * wv;
                    }
                    grads[w2_end + c] += err;
                }
                for h in 0..hidden {
                    if h_act[h] <= 0.0 {
                        continue; // ReLU gate
                    }
                    let g1 = &mut grads[h * d..(h + 1) * d];
                    for (g, &xv) in g1.iter_mut().zip(x) {
                        *g += dh[h] * xv;
                    }
                    grads[w1_end + h] += dh[h];
                }
            }
            let inv_n = 1.0 / n as f64;
            for (g, p) in grads.iter_mut().zip(params.iter()) {
                *g = *g * inv_n + cfg.weight_decay * p;
            }
            loss_trace.push(loss * inv_n);
            opt.step(&mut params, &grads);
        }
        Self { params, dim: d, hidden, k, loss_trace }
    }

    /// Class probabilities.
    pub fn predict_proba(&self, features: &Matrix<f64>) -> Matrix<f64> {
        assert_eq!(features.cols(), self.dim);
        let (hidden, d, k) = (self.hidden, self.dim, self.k);
        let (w1_end, b1_end) = (hidden * d, hidden * d + hidden);
        let w2_end = b1_end + k * hidden;
        let mut out = Matrix::<f64>::zeros(features.rows(), k);
        let mut h_act = vec![0.0f64; hidden];
        let mut logits = vec![0.0f64; k];
        for (i, x) in features.rows_iter().enumerate() {
            for h in 0..hidden {
                let w = &self.params[h * d..(h + 1) * d];
                let mut acc = self.params[w1_end + h];
                for (&wv, &xv) in w.iter().zip(x) {
                    acc += wv * xv;
                }
                h_act[h] = acc.max(0.0);
            }
            for c in 0..k {
                let w = &self.params[b1_end + c * hidden..b1_end + (c + 1) * hidden];
                let mut acc = self.params[w2_end + c];
                for (&wv, &hv) in w.iter().zip(&h_act) {
                    acc += wv * hv;
                }
                logits[c] = acc;
            }
            let lse = log_sum_exp(&logits);
            for c in 0..k {
                out[(i, c)] = (logits[c] - lse).exp();
            }
        }
        out
    }

    /// Hard predictions.
    pub fn predict(&self, features: &Matrix<f64>) -> Vec<usize> {
        let p = self.predict_proba(features);
        (0..p.rows()).map(|i| goggles_tensor::argmax(p.row(i))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{accuracy, one_hot_labels};
    use goggles_tensor::rng::std_rng;

    /// Linearly separable 2-D blobs.
    fn blobs(n_per: usize, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let n = 2 * n_per;
        let truth: Vec<usize> = (0..n).map(|i| usize::from(i >= n_per)).collect();
        let feats = Matrix::from_fn(n, 2, |i, _| {
            let c = if truth[i] == 0 { -1.5 } else { 1.5 };
            c + normal(&mut rng) * 0.5
        });
        (feats, truth)
    }

    /// XOR data — not linearly separable.
    fn xor(n_per: usize, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let n = 4 * n_per;
        let mut rows = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for q in 0..4 {
            let (sx, sy) = [(1.0, 1.0), (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0)][q];
            for _ in 0..n_per {
                rows.push([sx * 2.0 + normal(&mut rng) * 0.4, sy * 2.0 + normal(&mut rng) * 0.4]);
                truth.push(usize::from(q >= 2));
            }
        }
        (Matrix::from_fn(n, 2, |i, j| rows[i][j]), truth)
    }

    #[test]
    fn softmax_fits_separable_data() {
        let (x, y) = blobs(50, 1);
        let head = SoftmaxHead::train(&x, &one_hot_labels(&y, 2), &TrainConfig::default());
        assert!(accuracy(&head.predict(&x), &y) > 0.95);
    }

    #[test]
    fn softmax_loss_decreases() {
        let (x, y) = blobs(40, 2);
        let head = SoftmaxHead::train(&x, &one_hot_labels(&y, 2), &TrainConfig::default());
        let first = head.loss_trace[0];
        let last = *head.loss_trace.last().unwrap();
        assert!(last < first * 0.8, "loss {first} → {last}");
    }

    #[test]
    fn mlp_solves_xor_where_softmax_cannot() {
        let (x, y) = xor(30, 3);
        let oh = one_hot_labels(&y, 2);
        let cfg = TrainConfig { epochs: 600, learning_rate: 5e-3, ..TrainConfig::default() };
        let linear = SoftmaxHead::train(&x, &oh, &cfg);
        let mlp = MlpHead::train(&x, &oh, 16, &cfg);
        let lin_acc = accuracy(&linear.predict(&x), &y);
        let mlp_acc = accuracy(&mlp.predict(&x), &y);
        assert!(lin_acc < 0.75, "linear should fail on XOR: {lin_acc}");
        assert!(mlp_acc > 0.9, "mlp should solve XOR: {mlp_acc}");
    }

    #[test]
    fn soft_labels_train_comparably_to_hard_when_confident() {
        let (x, y) = blobs(60, 4);
        // Soft labels: 0.9/0.1 instead of 1/0.
        let mut soft = one_hot_labels(&y, 2);
        soft.map_in_place(|v| if v == 1.0 { 0.9 } else { 0.1 });
        let head = SoftmaxHead::train(&x, &soft, &TrainConfig::default());
        assert!(accuracy(&head.predict(&x), &y) > 0.95);
    }

    #[test]
    fn noisy_soft_labels_degrade_gracefully() {
        // Near-uniform labels carry almost no signal; the model should stay
        // close to chance rather than hallucinate certainty.
        let (x, y) = blobs(60, 5);
        let soft = Matrix::filled(x.rows(), 2, 0.5);
        let head = SoftmaxHead::train(&x, &soft, &TrainConfig::default());
        let p = head.predict_proba(&x);
        let avg_conf: f64 =
            (0..p.rows()).map(|i| p.row(i).iter().cloned().fold(f64::MIN, f64::max)).sum::<f64>()
                / p.rows() as f64;
        assert!(avg_conf < 0.6, "uniform labels produced confidence {avg_conf}");
        let _ = y;
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(20, 6);
        let head = MlpHead::train(
            &x,
            &one_hot_labels(&y, 2),
            8,
            &TrainConfig { epochs: 50, ..TrainConfig::default() },
        );
        let p = head.predict_proba(&x);
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = blobs(30, 7);
        let oh = one_hot_labels(&y, 2);
        let cfg = TrainConfig { epochs: 60, ..TrainConfig::default() };
        let a = SoftmaxHead::train(&x, &oh, &cfg);
        let b = SoftmaxHead::train(&x, &oh, &cfg);
        assert_eq!(a.predict(&x), b.predict(&x));
        assert_eq!(a.loss_trace, b.loss_trace);
    }

    use goggles_tensor::rng::normal;
}

//! CNN building blocks: same-padding 3×3 convolution, ReLU, 2×2 max-pool
//! and a dense layer. Inference only — the backbone is frozen in every
//! experiment of the paper (and in the end-model protocol only FC heads are
//! trained, which `goggles-endmodel` implements separately).
//!
//! # The im2col lowering
//!
//! [`Conv2d::forward`] does not loop over pixels. A stride-1 zero-padded
//! convolution is a matrix product in disguise (conv layers are just big
//! GEMMs — Gong et al.'s observation): lower the `C×H×W` input into the
//! `(C·k²) × (H·W)` patch panel whose column `y·W + x` stacks the receptive
//! field of output position `(y, x)`
//! ([`goggles_tensor::im2col_3x3`]), and the layer's whole arithmetic
//! collapses to
//!
//! ```text
//! out[out_c × H·W] = relu(weights[out_c × C·k²] · panel + bias)
//! ```
//!
//! which [`goggles_tensor::gemm_bias_relu_f32`] computes with register
//! tiling, panel packing and the bias+ReLU epilogue fused into the output
//! write. 1×1 kernels skip the lowering entirely (the input *is* the
//! panel); kernels other than 1 and 3 fall back to the scalar reference.
//! The scalar path is retained as [`Conv2d::forward_naive`] — it is the
//! semantic ground truth the property tests compare against (agreement
//! within `1e-5`; the two paths group the same `k` additions differently).
//!
//! # The scratch-arena contract
//!
//! Every buffer the fast path needs lives in one caller-owned
//! [`ConvScratch`]: the im2col panel, the GEMM packing buffer and a pair
//! of ping-pong activation planes. The arena grows to the largest layer it
//! has seen and is never shrunk or cleared — feeding it through a whole
//! network (`Vgg16::forward_pool_taps_into`) performs **zero per-layer
//! allocations** after warm-up, and reusing one arena across calls is
//! bit-deterministic (outputs never depend on previous contents: every
//! scratch byte consumed is written first). Hold one arena per worker
//! thread; they are cheap when idle and must not be shared concurrently.

use goggles_tensor::rng::normal;
use goggles_tensor::{gemm_bias_relu_f32, im2col_3x3, GemmScratch, Matrix, Tensor3};
use rand::Rng;

/// Reusable workspace of the im2col convolution path: the patch panel, the
/// GEMM packing buffer and two ping-pong activation buffers (used by
/// `Vgg16` to chain layers without allocating). See the module docs for
/// the arena contract.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    /// `(C·9) × (H·W)` im2col patch panel of the current layer.
    pub(crate) col: Vec<f32>,
    /// Packed-`A` workspace of the blocked GEMM.
    pub(crate) gemm: GemmScratch,
    /// Ping-pong activation buffers for chained forward passes.
    pub(crate) act: [Vec<f32>; 2],
}

impl ConvScratch {
    /// An empty arena; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// 2-D convolution with stride 1 and zero same-padding.
///
/// Weight layout is `[out_c][in_c][kh][kw]` flattened; this keeps the inner
/// accumulation loop contiguous over the kernel window.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    weight: Vec<f32>,
    bias: Vec<f32>,
}

impl Conv2d {
    /// He-initialized convolution (`σ = √(2 / fan_in)`), deterministic given
    /// the caller's RNG state. Bias starts at a small positive value so ReLU
    /// units are born alive.
    pub fn new_he_init<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
    ) -> Self {
        assert!(kernel % 2 == 1, "Conv2d requires an odd kernel for same padding");
        let fan_in = (in_channels * kernel * kernel) as f64;
        let sigma = (2.0 / fan_in).sqrt();
        let weight = (0..out_channels * in_channels * kernel * kernel)
            .map(|_| (normal(rng) * sigma) as f32)
            .collect();
        let bias = vec![0.01f32; out_channels];
        Self { in_channels, out_channels, kernel, weight, bias }
    }

    /// Construct from explicit parameters (for tests and serialization).
    pub fn from_parts(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        weight: Vec<f32>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weight.len(), out_channels * in_channels * kernel * kernel);
        assert_eq!(bias.len(), out_channels);
        Self { in_channels, out_channels, kernel, weight, bias }
    }

    /// Output channel count.
    pub(crate) fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    // goggles-lint: allow(dead-pub): accessor symmetric with the used out_channels; layer-shape introspection API
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Forward pass; `input` must have `in_channels` channels. Output has
    /// the same spatial size (stride 1, zero padding `k/2`). Runs the
    /// im2col + blocked-GEMM fast path with a throwaway scratch — hot loops
    /// should hold a [`ConvScratch`] and call [`Conv2d::forward_into`].
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        let (_, h, w) = input.shape();
        let mut out = Tensor3::zeros(self.out_channels, h, w);
        self.forward_into(
            input.as_slice(),
            h,
            w,
            &mut ConvScratch::default(),
            false,
            out.as_mut_slice(),
        );
        out
    }

    /// Im2col + blocked-GEMM forward pass into a caller-owned output slice,
    /// with the bias (and, when `relu` is set, the ReLU) fused into the
    /// output write. `input` is a `in_channels × h × w` channel-major
    /// slice; `out` must hold `out_channels · h · w` values and is fully
    /// overwritten. All buffers come from `scratch` (see the module docs
    /// for the arena contract).
    pub fn forward_into(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        scratch: &mut ConvScratch,
        relu: bool,
        out: &mut [f32],
    ) {
        self.forward_cols(input, h, w, &mut scratch.col, &mut scratch.gemm, relu, out);
    }

    /// [`Conv2d::forward_into`] against explicitly split scratch parts, so
    /// `Vgg16` can read the input from the same arena's activation buffers
    /// while lowering into `col`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn forward_cols(
        &self,
        input: &[f32],
        h: usize,
        w: usize,
        col: &mut Vec<f32>,
        gemm: &mut GemmScratch,
        relu: bool,
        out: &mut [f32],
    ) {
        assert_eq!(input.len(), self.in_channels * h * w, "Conv2d: input shape mismatch");
        assert_eq!(out.len(), self.out_channels * h * w, "Conv2d: output shape mismatch");
        let n = h * w;
        match self.kernel {
            1 => {
                // A 1×1 convolution needs no lowering: the input already is
                // the `C × H·W` panel.
                gemm_bias_relu_f32(
                    gemm,
                    &self.weight,
                    input,
                    self.out_channels,
                    self.in_channels,
                    n,
                    &self.bias,
                    relu,
                    out,
                );
            }
            3 => {
                im2col_3x3(input, self.in_channels, h, w, col);
                gemm_bias_relu_f32(
                    gemm,
                    &self.weight,
                    col,
                    self.out_channels,
                    self.in_channels * 9,
                    n,
                    &self.bias,
                    relu,
                    out,
                );
            }
            _ => {
                // Odd kernels other than 1 and 3 are not on any hot path;
                // run the scalar reference and fuse the epilogue manually.
                let mut owned = Tensor3::zeros(self.in_channels, h, w);
                owned.as_mut_slice().copy_from_slice(input);
                let res = self.forward_naive(&owned);
                for (d, &v) in out.iter_mut().zip(res.as_slice()) {
                    *d = if relu && v < 0.0 { 0.0 } else { v };
                }
            }
        }
    }

    /// Scalar reference forward pass — the original 6-deep loop nest with
    /// per-pixel bounds checks, kept as the semantic ground truth for the
    /// property tests and the `repro -- embed` baseline. Same contract as
    /// [`Conv2d::forward`]; the two agree within `1e-5` (they group the
    /// per-output additions differently).
    pub fn forward_naive(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        assert_eq!(input.channels(), self.in_channels, "Conv2d: channel mismatch");
        let (_, h, w) = input.shape();
        let k = self.kernel;
        let pad = (k / 2) as i32;
        let mut out = Tensor3::zeros(self.out_channels, h, w);
        let kk = k * k;
        let in_stride = self.in_channels * kk;
        for oc in 0..self.out_channels {
            let w_oc = &self.weight[oc * in_stride..(oc + 1) * in_stride];
            let bias = self.bias[oc];
            let out_plane = out.channel_mut(oc);
            for ic in 0..self.in_channels {
                let w_ic = &w_oc[ic * kk..(ic + 1) * kk];
                let in_plane = input.channel(ic);
                for y in 0..h {
                    for x in 0..w {
                        let mut acc = 0.0f32;
                        for ky in 0..k {
                            let sy = y as i32 + ky as i32 - pad;
                            if sy < 0 || sy >= h as i32 {
                                continue;
                            }
                            let in_row = &in_plane[sy as usize * w..(sy as usize + 1) * w];
                            let w_row = &w_ic[ky * k..(ky + 1) * k];
                            for (kx, &wv) in w_row.iter().enumerate() {
                                let sx = x as i32 + kx as i32 - pad;
                                if sx < 0 || sx >= w as i32 {
                                    continue;
                                }
                                acc += wv * in_row[sx as usize];
                            }
                        }
                        out_plane[y * w + x] += acc;
                    }
                }
            }
            // Add bias once per output location.
            for v in out.channel_mut(oc) {
                *v += bias;
            }
        }
        out
    }
}

/// In-place ReLU.
pub(crate) fn relu_in_place(t: &mut Tensor3<f32>) {
    for v in t.as_mut_slice() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// 2×2 max pooling with stride 2 (odd trailing rows/cols are dropped, as in
/// the standard VGG definition).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MaxPool2d;

impl MaxPool2d {
    /// Forward pass; halves each spatial dimension (floor).
    pub fn forward(&self, input: &Tensor3<f32>) -> Tensor3<f32> {
        let (c, h, w) = input.shape();
        let oh = h / 2;
        let ow = w / 2;
        assert!(oh > 0 && ow > 0, "MaxPool2d: input {h}x{w} too small");
        let mut out = Tensor3::zeros(c, oh, ow);
        self.forward_into(input.as_slice(), c, h, w, out.as_mut_slice());
        out
    }

    /// Pool a `c × h × w` channel-major slice directly into a caller-owned
    /// `c × (h/2) × (w/2)` output slice — this is how `Vgg16` writes each
    /// block's pool output straight into its tap tensor without an
    /// intermediate clone.
    pub fn forward_into(&self, input: &[f32], c: usize, h: usize, w: usize, out: &mut [f32]) {
        let oh = h / 2;
        let ow = w / 2;
        assert!(oh > 0 && ow > 0, "MaxPool2d: input {h}x{w} too small");
        assert_eq!(input.len(), c * h * w, "MaxPool2d: input shape mismatch");
        assert_eq!(out.len(), c * oh * ow, "MaxPool2d: output shape mismatch");
        for ch in 0..c {
            let plane = &input[ch * h * w..(ch + 1) * h * w];
            let out_plane = &mut out[ch * oh * ow..(ch + 1) * oh * ow];
            for y in 0..oh {
                let r0 = &plane[(2 * y) * w..(2 * y) * w + w];
                let r1 = &plane[(2 * y + 1) * w..(2 * y + 1) * w + w];
                for x in 0..ow {
                    let m = r0[2 * x].max(r0[2 * x + 1]).max(r1[2 * x]).max(r1[2 * x + 1]);
                    out_plane[y * ow + x] = m;
                }
            }
        }
    }
}

/// Dense layer `y = W x + b` with `W: out × in`.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): the VGG classifier-head layer type, API-symmetric with the exported Conv2d; constructed via vgg.rs and unit tests
pub struct Linear {
    weight: Matrix<f32>,
    bias: Vec<f32>,
}

impl Linear {
    /// He-initialized dense layer.
    pub fn new_he_init<R: Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        let sigma = (2.0 / in_dim as f64).sqrt();
        let weight = Matrix::from_fn(out_dim, in_dim, |_, _| (normal(rng) * sigma) as f32);
        Self { weight, bias: vec![0.0; out_dim] }
    }

    /// Construct from explicit parameters.
    pub fn from_parts(weight: Matrix<f32>, bias: Vec<f32>) -> Self {
        assert_eq!(weight.rows(), bias.len());
        Self { weight, bias }
    }

    /// Output dimension.
    // goggles-lint: allow(dead-pub): accessor symmetric with in_dim; layer-shape introspection API
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Input dimension.
    pub(crate) fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim(), "Linear: dim mismatch");
        let mut y = self.weight.matvec(x);
        for (v, &b) in y.iter_mut().zip(&self.bias) {
            *v += b;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;

    #[test]
    fn conv_identity_kernel_passes_through() {
        // 1x1 kernel with weight 1, bias 0 == identity
        let conv = Conv2d::from_parts(1, 1, 1, vec![1.0], vec![0.0]);
        let input = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = conv.forward(&input);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv_box_kernel_sums_neighbourhood() {
        // 3x3 all-ones kernel on a delta image: spreads the delta over 3x3
        let conv = Conv2d::from_parts(1, 1, 3, vec![1.0; 9], vec![0.0]);
        let mut input = Tensor3::zeros(1, 5, 5);
        input.set(0, 2, 2, 1.0);
        let out = conv.forward(&input);
        for y in 0..5 {
            for x in 0..5 {
                let expect = if (1..=3).contains(&y) && (1..=3).contains(&x) { 1.0 } else { 0.0 };
                assert_eq!(out.get(0, y, x), expect, "at ({y},{x})");
            }
        }
    }

    #[test]
    fn conv_zero_padding_at_borders() {
        let conv = Conv2d::from_parts(1, 1, 3, vec![1.0; 9], vec![0.0]);
        let input = Tensor3::from_vec(1, 2, 2, vec![1.0; 4]).unwrap();
        let out = conv.forward(&input);
        // each output = sum of in-bounds ones; corners see 4 pixels
        assert_eq!(out.get(0, 0, 0), 4.0);
    }

    #[test]
    fn conv_multi_channel_accumulates() {
        // two input channels, kernel picks each with weight 1 (1x1)
        let conv = Conv2d::from_parts(2, 1, 1, vec![1.0, 1.0], vec![0.5]);
        let input = Tensor3::from_vec(2, 1, 1, vec![2.0, 3.0]).unwrap();
        let out = conv.forward(&input);
        assert_eq!(out.get(0, 0, 0), 5.5);
    }

    #[test]
    fn conv_bias_applied_once_per_location() {
        let conv = Conv2d::from_parts(1, 1, 3, vec![0.0; 9], vec![1.25]);
        let input = Tensor3::zeros(1, 4, 4);
        let out = conv.forward(&input);
        assert!(out.as_slice().iter().all(|&v| v == 1.25));
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = std_rng(0);
        let conv = Conv2d::new_he_init(&mut rng, 16, 32, 3);
        let n = conv.weight.len() as f64;
        let mean: f64 = conv.weight.iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = conv.weight.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
        let expect = 2.0 / (16.0 * 9.0);
        assert!(mean.abs() < 0.005, "mean = {mean}");
        assert!((var - expect).abs() / expect < 0.15, "var = {var}, expect = {expect}");
    }

    #[test]
    fn gemm_path_matches_naive_reference() {
        let mut rng = std_rng(11);
        for &(in_c, out_c, h, w) in &[(1usize, 1usize, 4usize, 4usize), (3, 5, 6, 7), (8, 4, 5, 3)]
        {
            let conv = Conv2d::new_he_init(&mut rng, in_c, out_c, 3);
            let input = Tensor3::from_vec(
                in_c,
                h,
                w,
                (0..in_c * h * w).map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.1).collect(),
            )
            .unwrap();
            let fast = conv.forward(&input);
            let naive = conv.forward_naive(&input);
            for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{in_c}x{out_c} {h}x{w}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn forward_into_fuses_relu() {
        let mut rng = std_rng(3);
        let conv = Conv2d::new_he_init(&mut rng, 2, 3, 3);
        let input: Vec<f32> = (0..2 * 4 * 4).map(|i| (i as f32 - 16.0) * 0.3).collect();
        let mut scratch = ConvScratch::new();
        let mut fused = vec![0.0f32; 3 * 4 * 4];
        conv.forward_into(&input, 4, 4, &mut scratch, true, &mut fused);
        let mut plain = vec![0.0f32; 3 * 4 * 4];
        conv.forward_into(&input, 4, 4, &mut scratch, false, &mut plain);
        assert!(plain.iter().any(|&v| v < 0.0), "test input should produce negatives");
        for (f, p) in fused.iter().zip(&plain) {
            assert_eq!(*f, p.max(0.0));
        }
    }

    #[test]
    fn maxpool_forward_into_matches_forward() {
        let input = Tensor3::from_vec(
            2,
            4,
            6,
            (0..2 * 4 * 6).map(|i| ((i * 13 % 7) as f32) - 3.0).collect(),
        )
        .unwrap();
        let owned = MaxPool2d.forward(&input);
        let mut flat = vec![0.0f32; 2 * 2 * 3];
        MaxPool2d.forward_into(input.as_slice(), 2, 4, 6, &mut flat);
        assert_eq!(owned.as_slice(), &flat[..]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = Tensor3::from_vec(1, 1, 4, vec![-1.0, 0.0, 2.0, -0.5]).unwrap();
        relu_in_place(&mut t);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn maxpool_halves_and_takes_max() {
        let input = Tensor3::from_vec(
            1,
            4,
            4,
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, 7.0,
            ],
        )
        .unwrap();
        let out = MaxPool2d.forward(&input);
        assert_eq!(out.shape(), (1, 2, 2));
        assert_eq!(out.as_slice(), &[6.0, 8.0, 9.0, 7.0]);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let input = Tensor3::zeros(2, 5, 7);
        let out = MaxPool2d.forward(&input);
        assert_eq!(out.shape(), (2, 2, 3));
    }

    #[test]
    fn linear_affine_map() {
        let w = Matrix::from_rows(&[&[1.0f32, 2.0], &[0.0, -1.0]]);
        let lin = Linear::from_parts(w, vec![0.5, 1.0]);
        let y = lin.forward(&[3.0, 4.0]);
        assert_eq!(y, vec![11.5, -3.0]);
        assert_eq!(lin.in_dim(), 2);
        assert_eq!(lin.out_dim(), 2);
    }

    #[test]
    fn layers_are_deterministic_per_seed() {
        let a = {
            let mut rng = std_rng(9);
            Conv2d::new_he_init(&mut rng, 3, 4, 3).weight
        };
        let b = {
            let mut rng = std_rng(9);
            Conv2d::new_he_init(&mut rng, 3, 4, 3).weight
        };
        assert_eq!(a, b);
    }
}

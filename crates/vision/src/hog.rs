//! Histogram of Oriented Gradients (Dalal & Triggs, 2005).
//!
//! §5.1.5 of the paper compares GOGGLES' prototype-based affinity against an
//! affinity matrix built from pairwise cosine similarity of HOG descriptors.
//! This is a faithful reimplementation: unsigned gradients, 9 orientation
//! bins with linear vote interpolation, 2×2-cell block normalization with
//! L2-Hys clipping.

use crate::filter::sobel_gradients;
use crate::image::Image;

/// HOG extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HogParams {
    /// Square cell size in pixels.
    pub cell_size: usize,
    /// Cells per block edge (blocks are `block_cells × block_cells`).
    pub block_cells: usize,
    /// Number of unsigned orientation bins over `[0, π)`.
    pub bins: usize,
    /// L2-Hys clipping threshold.
    pub clip: f32,
}

impl Default for HogParams {
    fn default() -> Self {
        Self { cell_size: 8, block_cells: 2, bins: 9, clip: 0.2 }
    }
}

impl HogParams {
    /// Descriptor length for an `h × w` image.
    // goggles-lint: allow(dead-pub): documented HOG API (output-size contract); exercised only by unit tests
    pub fn descriptor_len(&self, h: usize, w: usize) -> usize {
        let cy = h / self.cell_size;
        let cx = w / self.cell_size;
        if cy < self.block_cells || cx < self.block_cells {
            return 0;
        }
        let by = cy - self.block_cells + 1;
        let bx = cx - self.block_cells + 1;
        by * bx * self.block_cells * self.block_cells * self.bins
    }
}

/// Compute the HOG descriptor of an image (converted to grayscale first).
///
/// Returns an empty vector when the image is smaller than one block.
pub fn hog_descriptor(img: &Image, params: &HogParams) -> Vec<f32> {
    assert!(params.cell_size > 0 && params.block_cells > 0 && params.bins > 0);
    let gray = img.to_grayscale();
    let (_, h, w) = gray.shape();
    let cells_y = h / params.cell_size;
    let cells_x = w / params.cell_size;
    if cells_y < params.block_cells || cells_x < params.block_cells {
        return Vec::new();
    }
    let (mag, ori) = sobel_gradients(&gray);

    // 1. per-cell orientation histograms with linear interpolation between
    //    the two nearest bins.
    let bins = params.bins;
    let bin_width = std::f32::consts::PI / bins as f32;
    let mut cell_hist = vec![0.0f32; cells_y * cells_x * bins];
    for y in 0..cells_y * params.cell_size {
        let cy = y / params.cell_size;
        for x in 0..cells_x * params.cell_size {
            let cx = x / params.cell_size;
            let idx = y * w + x;
            let m = mag[idx];
            // Skip negligible magnitudes: f32 rounding leaves ~1e-8 residue
            // on flat regions, which block normalization would amplify.
            if m <= 1e-5 {
                continue;
            }
            let pos = ori[idx] / bin_width - 0.5;
            let b0 = pos.floor();
            let frac = pos - b0;
            let bin0 = (b0 as i32).rem_euclid(bins as i32) as usize;
            let bin1 = (bin0 + 1) % bins;
            let base = (cy * cells_x + cx) * bins;
            cell_hist[base + bin0] += m * (1.0 - frac);
            cell_hist[base + bin1] += m * frac;
        }
    }

    // 2. block normalization (L2-Hys) over sliding block windows.
    let bc = params.block_cells;
    let blocks_y = cells_y - bc + 1;
    let blocks_x = cells_x - bc + 1;
    let block_len = bc * bc * bins;
    let mut descriptor = Vec::with_capacity(blocks_y * blocks_x * block_len);
    let mut block = vec![0.0f32; block_len];
    for by in 0..blocks_y {
        for bx in 0..blocks_x {
            block.clear();
            for dy in 0..bc {
                for dx in 0..bc {
                    let base = ((by + dy) * cells_x + (bx + dx)) * bins;
                    block.extend_from_slice(&cell_hist[base..base + bins]);
                }
            }
            // L2 normalize, clip, renormalize (L2-Hys).
            let norm = block.iter().map(|v| v * v).sum::<f32>().sqrt() + 1e-6;
            for v in &mut block {
                *v = (*v / norm).min(params.clip);
            }
            let norm2 = block.iter().map(|v| v * v).sum::<f32>().sqrt() + 1e-6;
            for v in &mut block {
                *v /= norm2;
            }
            descriptor.extend_from_slice(&block);
        }
    }
    descriptor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::draw;
    use goggles_tensor::cosine_similarity;

    fn vertical_edges() -> Image {
        let mut img = Image::new(1, 32, 32);
        draw::fill_stripes(&mut img, 0.0, 8.0, 0.5, &[1.0], 1.0);
        img
    }

    fn horizontal_edges() -> Image {
        let mut img = Image::new(1, 32, 32);
        draw::fill_stripes(&mut img, std::f32::consts::FRAC_PI_2, 8.0, 0.5, &[1.0], 1.0);
        img
    }

    #[test]
    fn descriptor_length_matches_formula() {
        let p = HogParams::default();
        let img = Image::new(1, 32, 32);
        let d = hog_descriptor(&img, &p);
        assert_eq!(d.len(), p.descriptor_len(32, 32));
        // 32/8 = 4 cells; (4-1)^2 blocks of 2*2*9
        assert_eq!(d.len(), 9 * 36);
    }

    #[test]
    fn too_small_image_yields_empty() {
        let p = HogParams::default();
        let img = Image::new(1, 8, 8); // one cell only, block needs 2
        assert!(hog_descriptor(&img, &p).is_empty());
        assert_eq!(p.descriptor_len(8, 8), 0);
    }

    #[test]
    fn flat_image_descriptor_is_zero() {
        let img = Image::filled(1, 32, 32, 0.7);
        let d = hog_descriptor(&img, &HogParams::default());
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn orientations_distinguish_stripe_direction() {
        let p = HogParams::default();
        let dv = hog_descriptor(&vertical_edges(), &p);
        let dh = hog_descriptor(&horizontal_edges(), &p);
        let dv2 = hog_descriptor(&vertical_edges(), &p);
        let same = cosine_similarity(&dv, &dv2);
        let cross = cosine_similarity(&dv, &dh);
        assert!(same > 0.999, "same = {same}");
        assert!(cross < 0.35, "cross = {cross}");
    }

    #[test]
    fn block_values_are_clipped() {
        let p = HogParams::default();
        let d = hog_descriptor(&vertical_edges(), &p);
        // After L2-Hys the L2 norm of each block is ≤ 1 and every entry is
        // bounded by clip / norm2 which stays well below 1.
        assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let max = d.iter().copied().fold(0.0f32, f32::max);
        assert!(max > 0.0);
    }

    #[test]
    fn descriptor_is_translation_tolerant_within_cell() {
        // shifting stripes by a full period leaves descriptor unchanged
        let p = HogParams::default();
        let mut a = Image::new(1, 32, 32);
        draw::fill_stripes(&mut a, 0.0, 8.0, 0.5, &[1.0], 1.0);
        let da = hog_descriptor(&a, &p);
        let db = hog_descriptor(&a.clone(), &p);
        assert_eq!(da, db);
    }
}

//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5). The bench targets in `crates/bench` and several examples
//! are thin wrappers over this module.
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table 1 (labeling accuracy) | [`table1::run`] |
//! | Table 2 (end-model accuracy) | [`table2::run`] |
//! | Figure 2 (affinity distributions) | [`figures::figure2`] |
//! | Figure 5 (affinity matrix blocks) | [`figures::figure5`] |
//! | Figure 7 (dev-set size theory) | [`figures::figure7`] |
//! | Figure 8 (accuracy vs dev size) | [`figures::figure8`] |
//! | Figure 9 (accuracy vs #functions) | [`figures::figure9`] |
//! | Serving latency/throughput (not in the paper) | [`serving::run`] |
//! | Affinity kernel: blocked vs scalar (not in the paper) | [`affinity_bench::run`] |
//! | Embedding: im2col+GEMM trunk vs scalar (not in the paper) | [`embed_bench::run`] |
//! | Continuous learning: incremental vs full refit (not in the paper) | [`fit_bench::run`] |
//!
//! Every run is deterministic given the [`Scale`]; `Scale::from_env()`
//! honours `GOGGLES_SCALE=quick|standard|paper` so CI and laptops can dial
//! the cost.

pub mod affinity_bench;
pub mod embed_bench;
pub mod figures;
pub mod fit_bench;
pub mod methods;
pub mod report;
pub mod serving;
pub mod table1;
pub mod table2;

use goggles_cnn::VggConfig;
use goggles_core::{Goggles, GogglesConfig};
use goggles_datasets::{cub, generate, gtsrb, Dataset, DevSet, TaskConfig, TaskKind};
use goggles_models::EmOptions;
use goggles_tensor::Matrix;

/// Cost dial for the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run: tiny backbone, small datasets, 1 trial.
    Quick,
    /// Default: small backbone, moderate datasets, 2 trials / 2 pairs.
    Standard,
    /// Paper-shaped: full 64×64 backbone, Z = 10 (α = 50), 3 trials /
    /// 3 class pairs. (The paper itself averages 10 trials / 10 pairs;
    /// bump [`RunParams::trials`] if you have the patience.)
    Paper,
}

impl Scale {
    /// Read the scale from `GOGGLES_SCALE` (default [`Scale::Standard`]).
    pub fn from_env() -> Self {
        match std::env::var("GOGGLES_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "quick" => Scale::Quick,
            "paper" => Scale::Paper,
            _ => Scale::Standard,
        }
    }

    /// Concrete run parameters for this scale.
    pub fn params(self) -> RunParams {
        match self {
            Scale::Quick => RunParams {
                n_train_per_class: 16,
                n_test_per_class: 8,
                image_size: 32,
                pairs: 1,
                trials: 1,
                dev_per_class: 5,
                top_z: 4,
                tiny_backbone: true,
            },
            Scale::Standard => RunParams {
                n_train_per_class: 24,
                n_test_per_class: 10,
                image_size: 64,
                pairs: 2,
                trials: 2,
                dev_per_class: 5,
                top_z: 6,
                tiny_backbone: false,
            },
            Scale::Paper => RunParams {
                n_train_per_class: 50,
                n_test_per_class: 15,
                image_size: 64,
                pairs: 3,
                trials: 3,
                dev_per_class: 5,
                top_z: 10,
                tiny_backbone: false,
            },
        }
    }
}

/// Concrete knobs of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Training images per class.
    pub n_train_per_class: usize,
    /// Held-out test images per class.
    pub n_test_per_class: usize,
    /// Square image side.
    pub image_size: usize,
    /// Class pairs sampled for CUB / GTSRB (paper: 10).
    pub pairs: usize,
    /// Trials per fixed-class dataset (paper: 10).
    pub trials: usize,
    /// Dev labels per class (paper default: 5).
    pub dev_per_class: usize,
    /// Prototypes per layer (paper: 10 → α = 50).
    pub top_z: usize,
    /// Use the reduced backbone (tests / quick runs).
    pub tiny_backbone: bool,
}

impl RunParams {
    /// The GOGGLES configuration implied by these parameters.
    pub fn goggles_config(&self, seed: u64) -> GogglesConfig {
        let vgg = if self.tiny_backbone {
            VggConfig { input_size: self.image_size.max(32), ..VggConfig::tiny() }
        } else {
            VggConfig { input_size: self.image_size.max(64), ..VggConfig::default() }
        };
        GogglesConfig {
            vgg,
            top_z: self.top_z,
            em: EmOptions { restarts: 2, ..EmOptions::default() },
            seed,
            ..GogglesConfig::default()
        }
    }

    /// The five benchmark tasks for trial `trial` (CUB/GTSRB pick the
    /// `trial`-th sampled class pair, wrapping).
    pub fn tasks_for_trial(&self, trial: usize) -> Vec<TaskConfig> {
        let cub_pairs = cub::class_pairs(self.pairs.max(1), 0xC0B);
        let gtsrb_pairs = gtsrb::class_pairs(self.pairs.max(1), 0x675);
        let (ca, cb) = cub_pairs[trial % cub_pairs.len()];
        let (ga, gb) = gtsrb_pairs[trial % gtsrb_pairs.len()];
        let seed = 0x5EED_0000 + trial as u64;
        let mk = |kind| TaskConfig {
            kind,
            n_train_per_class: self.n_train_per_class,
            n_test_per_class: self.n_test_per_class,
            image_size: self.image_size,
            seed,
        };
        vec![
            mk(TaskKind::Cub { class_a: ca, class_b: cb }),
            mk(TaskKind::Gtsrb { class_a: ga, class_b: gb }),
            mk(TaskKind::Surface),
            mk(TaskKind::TbXray),
            mk(TaskKind::PnXray),
        ]
    }
}

/// Everything one (dataset, trial) evaluation needs, computed once and
/// shared by all methods so the comparison is apples-to-apples: same
/// backbone, same affinity matrix, same dev set, same features.
pub struct TrialContext {
    /// The generated dataset.
    pub dataset: Dataset,
    /// The sampled development set (global indices).
    pub dev: DevSet,
    /// The GOGGLES system (owns the shared frozen backbone).
    pub goggles: Goggles,
    /// Affinity matrix over the training block.
    pub affinity: goggles_core::AffinityMatrix,
    /// Dev set translated to affinity row space.
    pub dev_rows: DevSet,
    /// Backbone logits of the training block (raw f64).
    pub train_logits: Matrix<f64>,
    /// Backbone logits of the test block (raw f64).
    pub test_logits: Matrix<f64>,
}

impl TrialContext {
    /// Build the shared context for one task configuration.
    pub fn build(params: &RunParams, task: &TaskConfig, trial: usize) -> Self {
        let dataset = generate(task);
        let dev = dataset.sample_dev_set(params.dev_per_class, task.seed ^ trial as u64);
        let goggles = Goggles::new(params.goggles_config(0xA11 + trial as u64));
        let affinity = goggles.build_affinity_matrix(&dataset.train_images());
        let dev_rows = DevSet {
            indices: dev
                .indices
                .iter()
                .map(|&i| {
                    dataset
                        .train_indices
                        .iter()
                        .position(|&t| t == i)
                        .expect("dev index must be in the training block")
                })
                .collect(),
            labels: dev.labels.clone(),
        };
        let to_f64 = |m: &Matrix<f32>| Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f64);
        let train_imgs: Vec<_> = dataset.train_images().iter().map(|&i| i.clone()).collect();
        let test_imgs: Vec<_> = dataset.test_images().iter().map(|&i| i.clone()).collect();
        let threads = goggles.config().threads;
        let train_logits = to_f64(&goggles.backbone().logits_batch_threaded(&train_imgs, threads));
        let test_logits = to_f64(&goggles.backbone().logits_batch_threaded(&test_imgs, threads));
        Self { dataset, dev, goggles, affinity, dev_rows, train_logits, test_logits }
    }

    /// Ground-truth labels of the training block.
    pub fn train_truth(&self) -> Vec<usize> {
        self.dataset.train_labels()
    }

    /// Row positions (train-block space) of the dev set.
    pub fn dev_row_set(&self) -> Vec<usize> {
        self.dev_rows.indices.clone()
    }

    /// Accuracy of hard labels over non-dev training rows — the paper's
    /// labeling-accuracy metric ("the remaining images", §5.1.1).
    pub fn labeling_accuracy(&self, hard_labels: &[usize]) -> f64 {
        let truth = self.train_truth();
        assert_eq!(hard_labels.len(), truth.len());
        let dev_rows = self.dev_row_set();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (i, (&p, &t)) in hard_labels.iter().zip(&truth).enumerate() {
            if dev_rows.contains(&i) {
                continue;
            }
            total += 1;
            if p == t {
                correct += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Best accuracy over all cluster→class permutations (the "optimal
    /// cluster-class mapping" the paper grants the clustering baselines),
    /// computed over non-dev rows via the assignment solver.
    pub fn optimal_mapping_accuracy(&self, cluster_labels: &[usize], k: usize) -> f64 {
        let truth = self.train_truth();
        assert_eq!(cluster_labels.len(), truth.len());
        let dev_rows = self.dev_row_set();
        // counts[cluster][class] over non-dev rows
        let mut counts = Matrix::<f64>::zeros(k, k);
        let mut total = 0usize;
        for (i, (&c, &t)) in cluster_labels.iter().zip(&truth).enumerate() {
            if dev_rows.contains(&i) {
                continue;
            }
            counts[(c, t)] += 1.0;
            total += 1;
        }
        if total == 0 {
            return 0.0;
        }
        let assign = goggles_models::solve_assignment(&counts);
        let correct: f64 = assign.iter().enumerate().map(|(c, &t)| counts[(c, t)]).sum();
        correct / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_increasing_cost() {
        let q = Scale::Quick.params();
        let s = Scale::Standard.params();
        let p = Scale::Paper.params();
        assert!(q.n_train_per_class <= s.n_train_per_class);
        assert!(s.n_train_per_class <= p.n_train_per_class);
        assert_eq!(p.top_z, 10, "paper scale must use α = 50");
        assert!(!p.tiny_backbone);
    }

    #[test]
    fn tasks_for_trial_covers_all_five() {
        let params = Scale::Quick.params();
        let tasks = params.tasks_for_trial(0);
        assert_eq!(tasks.len(), 5);
        let names: Vec<_> = tasks.iter().map(|t| t.kind.dataset_name()).collect();
        assert_eq!(names, vec!["CUB", "GTSRB", "Surface", "TB-Xray", "PN-Xray"]);
        // different trials draw different CUB pairs when pairs > 1
        let p2 = RunParams { pairs: 3, ..params };
        let t0 = p2.tasks_for_trial(0)[0].kind;
        let t1 = p2.tasks_for_trial(1)[0].kind;
        assert_ne!(t0, t1);
    }

    #[test]
    fn trial_context_is_consistent() {
        let params = RunParams {
            n_train_per_class: 6,
            n_test_per_class: 2,
            image_size: 32,
            pairs: 1,
            trials: 1,
            dev_per_class: 2,
            top_z: 2,
            tiny_backbone: true,
        };
        let task = params.tasks_for_trial(0)[2]; // Surface: cheapest
        let ctx = TrialContext::build(&params, &task, 0);
        let n = ctx.dataset.train_indices.len();
        assert_eq!(ctx.affinity.n, n);
        assert_eq!(ctx.affinity.alpha, 5 * params.top_z);
        assert_eq!(ctx.train_logits.rows(), n);
        assert_eq!(ctx.test_logits.rows(), 4);
        assert_eq!(ctx.dev_rows.indices.len(), 4);
        // perfect labels → accuracy 1; flipped → 0
        let truth = ctx.train_truth();
        assert_eq!(ctx.labeling_accuracy(&truth), 1.0);
        let flipped: Vec<usize> = truth.iter().map(|&t| 1 - t).collect();
        assert_eq!(ctx.labeling_accuracy(&flipped), 0.0);
        // optimal mapping rescues the flip
        assert_eq!(ctx.optimal_mapping_accuracy(&flipped, 2), 1.0);
    }
}

//! Hot-swappable model lifecycle: the [`SnapshotRegistry`].
//!
//! A production labeler in the GOGGLES model is refit whenever the prototype
//! corpus or dev set grows, so the serving layer must swap in a new
//! [`FittedLabeler`] **under live traffic** — without dropping requests,
//! without blocking the workers, and with an escape hatch back to the
//! previous version. The registry owns the versioned `Arc<FittedLabeler>`s
//! and hands out cheap leases:
//!
//! * [`SnapshotRegistry::publish`] validates a labeler
//!   ([`FittedLabeler::validate`]) and atomically makes it the current
//!   version (monotonically numbered from 1).
//! * [`SnapshotRegistry::get`] resolves the *current* version as a
//!   [`PublishedSnapshot`] lease — an `Arc` clone under a short lock, never
//!   held across labeling. Callers that resolve once per batch get the
//!   swap-consistency guarantee: an in-flight batch finishes on the version
//!   it started with; the next batch picks up the swap.
//! * [`SnapshotRegistry::rollback`] re-points "current" at the previously
//!   published version (retired versions are kept, so rollback is O(1) and
//!   in-flight leases stay valid).
//! * Per-version serve counters (`PublishedSnapshot::record_served`,
//!   surfaced by [`SnapshotRegistry::versions`]) make a canary or a drain
//!   observable: publish, then watch the old version's counter go quiet.
//! * `SnapshotRegistry::prune_retired` expires old retired versions
//!   (keeping leased ones and the most recent `keep_last`), so a service
//!   that republishes periodically holds O(1) snapshots in memory.

use crate::snapshot::FittedLabeler;
use crate::{ServeError, ServeResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A lease on one published snapshot version: the labeler, its version
/// number, and the shared serve counter. Cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
// goggles-lint: allow(dead-pub): return type of pub SnapshotRegistry accessors; external callers reach it through inference
pub struct PublishedSnapshot {
    version: u64,
    labeler: Arc<FittedLabeler>,
    served: Arc<AtomicU64>,
}

impl PublishedSnapshot {
    /// The monotonically increasing version number (first publish = 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen labeler of this version.
    pub fn labeler(&self) -> &Arc<FittedLabeler> {
        &self.labeler
    }

    /// Record `n` requests served on this version (reflected in
    /// [`SnapshotRegistry::versions`]).
    pub(crate) fn record_served(&self, n: u64) {
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// Requests served on this version so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

/// Observability row for one registered version.
#[derive(Debug, Clone, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): return type of pub SnapshotRegistry::versions; external callers reach it through inference
pub struct VersionInfo {
    /// Version number.
    pub version: u64,
    /// Requests served on this version.
    pub served: u64,
    /// Whether this is the version [`SnapshotRegistry::get`] resolves.
    pub current: bool,
    /// Outstanding leases on this version: `Arc` clones of the labeler held
    /// outside the registry (in-flight batches, retained handles). 0 means
    /// only the registry itself references the version.
    pub leases: u64,
}

struct RegistryState {
    /// Every registered version in publish order. Retired versions stay
    /// resolvable for in-flight leases and for rollback until explicitly
    /// expired with [`SnapshotRegistry::prune_retired`] (which
    /// [`crate::LabelService::reload_from`] does after each successful
    /// publish), so registry memory is bounded even under periodic reloads.
    versions: Vec<PublishedSnapshot>,
    /// Index into `versions` of the currently served snapshot.
    current: usize,
}

/// Owner of the versioned labelers behind a running [`crate::LabelService`].
///
/// All operations take a short internal lock; none holds it across labeling
/// work, so `publish` under load never blocks traffic for longer than an
/// `Arc` clone.
pub struct SnapshotRegistry {
    state: Mutex<RegistryState>,
}

impl SnapshotRegistry {
    /// Take the state lock, recovering from poisoning. Recovery is sound:
    /// every mutation below leaves `RegistryState` consistent before any
    /// operation that could unwind, so a poisoned lock only means some
    /// other thread panicked while *observing* a consistent state.
    fn state(&self) -> std::sync::MutexGuard<'_, RegistryState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Start a registry with an initial labeler as version 1.
    ///
    /// The initial labeler is validated like any publish; a freshly fitted
    /// labeler always passes.
    pub fn new(initial: FittedLabeler) -> ServeResult<Self> {
        initial.validate()?;
        let state = RegistryState {
            versions: vec![PublishedSnapshot {
                version: 1,
                labeler: Arc::new(initial),
                served: Arc::new(AtomicU64::new(0)),
            }],
            current: 0,
        };
        Ok(Self { state: Mutex::new(state) })
    }

    /// Validate `labeler` and atomically make it the current version.
    /// Returns the new version number. Corrupt or inconsistent labelers are
    /// rejected with [`ServeError::Corrupt`] and the current version is
    /// left untouched.
    pub fn publish(&self, labeler: FittedLabeler) -> ServeResult<u64> {
        labeler.validate()?;
        let mut state = self.state();
        let version = state.versions.last().map_or(0, |s| s.version) + 1;
        state.versions.push(PublishedSnapshot {
            version,
            labeler: Arc::new(labeler),
            served: Arc::new(AtomicU64::new(0)),
        });
        state.current = state.versions.len() - 1;
        Ok(version)
    }

    /// Load, validate and publish a snapshot file — the hot-reload front
    /// used by [`crate::LabelService::reload_from`]. Accepts any
    /// [`crate::SnapshotFormat`].
    pub(crate) fn publish_file(&self, path: &std::path::Path) -> ServeResult<u64> {
        self.publish(FittedLabeler::load_from(path)?)
    }

    /// Publish a snapshot from a file **or a directory**. A directory is
    /// swept first ([`crate::snapshot::sweep_snapshot_dir`]): torn and
    /// corrupt files are quarantined, and the newest valid snapshot is
    /// published — the crash-recovery path, so a service restarting over a
    /// snapshot directory always comes up on the best surviving version.
    pub fn reload_from(&self, path: &std::path::Path) -> ServeResult<u64> {
        if !path.is_dir() {
            return self.publish_file(path);
        }
        let report = crate::snapshot::sweep_snapshot_dir(path)?;
        match report.valid.first() {
            Some(newest) => self.publish_file(newest),
            None => Err(ServeError::Registry(format!(
                "no valid snapshot in {} ({} file(s) quarantined)",
                path.display(),
                report.quarantined.len()
            ))),
        }
    }

    /// Re-point "current" at the version published immediately before the
    /// current one. Errors with [`ServeError::Registry`] when already at
    /// version 1, or when the predecessor was expired by
    /// `SnapshotRegistry::prune_retired` — rolling back must never land
    /// on an *older* survivor silently, so the error lists the versions
    /// still registered instead.
    pub fn rollback(&self) -> ServeResult<u64> {
        let mut state = self.state();
        let v = state.versions[state.current].version;
        if v == 1 {
            return Err(ServeError::Registry(format!(
                "cannot roll back: version {v} is the oldest registered snapshot"
            )));
        }
        // Versions are numbered consecutively at publish time, so the
        // publish-order predecessor of `v` is exactly `v - 1`; an
        // index-based step would target whichever older version happened
        // to survive pruning.
        let target = v - 1;
        match state.versions.iter().position(|s| s.version == target) {
            Some(i) => {
                state.current = i;
                Ok(target)
            }
            None => {
                let surviving: Vec<u64> = state.versions.iter().map(|s| s.version).collect();
                Err(ServeError::Registry(format!(
                    "cannot roll back from version {v}: predecessor {target} was pruned; \
                     surviving versions: {surviving:?}"
                )))
            }
        }
    }

    /// Lease the current version: an `Arc` clone under a short lock.
    pub fn get(&self) -> PublishedSnapshot {
        let state = self.state();
        state.versions[state.current].clone()
    }

    /// Lease a specific registered version (current or retired).
    // goggles-lint: allow(dead-pub): lookup sibling of the used current_version; part of the registry query API, exercised only by unit tests
    pub fn get_version(&self, version: u64) -> ServeResult<PublishedSnapshot> {
        let state = self.state();
        state
            .versions
            .iter()
            .find(|s| s.version == version)
            .cloned()
            .ok_or_else(|| ServeError::Registry(format!("version {version} is not registered")))
    }

    /// The current version number.
    pub fn current_version(&self) -> u64 {
        let state = self.state();
        state.versions[state.current].version
    }

    /// Expire retired versions to bound registry memory: drop every
    /// *unleased* retired version older than the `keep_last` most recently
    /// published retired ones. Returns how many were dropped.
    ///
    /// The current version is never dropped. A retired version still held
    /// by an in-flight lease ([`SnapshotRegistry::get`] clone outside the
    /// registry) is kept — its `Arc` strong count proves a batch may still
    /// be labeling on it — so pruning under live traffic is always safe.
    /// `keep_last ≥ 1` preserves the [`SnapshotRegistry::rollback`] target.
    ///
    /// Note that pruning forgets the dropped versions' serve counters
    /// ([`SnapshotRegistry::versions`] observability), which is the point:
    /// a service that republishes periodically holds O(keep_last) snapshots
    /// instead of one per publish ever made.
    pub fn prune_retired(&self, keep_last: usize) -> usize {
        let mut state = self.state();
        let n = state.versions.len();
        let retired: Vec<usize> = (0..n).filter(|&i| i != state.current).collect();
        let prunable = retired.len().saturating_sub(keep_last);
        let mut drop_marks = vec![false; n];
        for &i in &retired[..prunable] {
            // strong count 1 == only the registry's own Arc — no lease out.
            if Arc::strong_count(&state.versions[i].labeler) == 1 {
                drop_marks[i] = true;
            }
        }
        let dropped = drop_marks.iter().filter(|&&d| d).count();
        if dropped > 0 {
            // `current` is never marked, so its new index is its old index
            // minus the entries dropped before it.
            let dropped_before = drop_marks[..state.current].iter().filter(|&&d| d).count();
            let mut kept = Vec::with_capacity(n - dropped);
            for (i, snap) in state.versions.drain(..).enumerate() {
                if !drop_marks[i] {
                    kept.push(snap);
                }
            }
            state.current -= dropped_before;
            state.versions = kept;
        }
        dropped
    }

    /// Observability: every registered version with its serve counter, in
    /// publish order.
    pub fn versions(&self) -> Vec<VersionInfo> {
        let state = self.state();
        state
            .versions
            .iter()
            .enumerate()
            .map(|(i, s)| VersionInfo {
                version: s.version,
                served: s.served(),
                current: i == state.current,
                leases: (Arc::strong_count(&s.labeler) - 1) as u64,
            })
            .collect()
    }
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry").field("versions", &self.versions()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, Dataset, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, Dataset) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, ds)
    }

    #[test]
    fn publish_rollback_and_counters() {
        let (a, _) = fitted(41);
        let b = FittedLabeler::load(&a.save_v2(true)).unwrap();
        let registry = SnapshotRegistry::new(a).unwrap();
        assert_eq!(registry.current_version(), 1);

        let lease1 = registry.get();
        assert_eq!(lease1.version(), 1);
        lease1.record_served(3);

        let v2 = registry.publish(b).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(registry.current_version(), 2);
        // the old lease stays valid and keeps counting against version 1
        lease1.record_served(2);
        let infos = registry.versions();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0], VersionInfo { version: 1, served: 5, current: false, leases: 1 });
        assert_eq!(infos[1], VersionInfo { version: 2, served: 0, current: true, leases: 0 });

        // rollback re-points current; retired version still leasable
        assert_eq!(registry.rollback().unwrap(), 1);
        assert_eq!(registry.current_version(), 1);
        assert!(matches!(registry.rollback(), Err(ServeError::Registry(_))));
        assert_eq!(registry.get_version(2).unwrap().version(), 2);
        assert!(registry.get_version(99).is_err());
    }

    #[test]
    fn publish_rejects_corrupt_labelers_and_keeps_current() {
        let (a, _) = fitted(42);
        let mut bad = a.clone();
        // not a permutation — must be rejected at publish time
        let registry = SnapshotRegistry::new(a).unwrap();
        {
            let bytes = {
                // corrupt through the public surface: a v1 snapshot with a
                // duplicated mapping entry re-checksummed would also do, but
                // the clone path is simpler and equivalent here.
                bad.set_mapping_for_tests(vec![0, 0]);
                bad.save()
            };
            assert!(FittedLabeler::load(&bytes).is_err());
        }
        assert!(matches!(registry.publish(bad), Err(ServeError::Corrupt(_))));
        assert_eq!(registry.current_version(), 1, "failed publish must not advance");
        assert_eq!(registry.versions().len(), 1);
    }

    #[test]
    fn prune_retired_drops_old_unleased_versions_only() {
        let (a, _) = fitted(44);
        let registry = SnapshotRegistry::new(a.clone()).unwrap();
        for _ in 0..4 {
            registry.publish(a.clone()).unwrap(); // versions 2..=5
        }
        assert_eq!(registry.versions().len(), 5);

        // Lease version 2 (retired): it must survive pruning.
        let lease2 = registry.get_version(2).unwrap();
        // keep_last = 1 → retired {1,2,3,4}, prunable {1,2,3}; 2 is leased.
        let dropped = registry.prune_retired(1);
        assert_eq!(dropped, 2, "versions 1 and 3 are old, retired and unleased");
        let left: Vec<u64> = registry.versions().iter().map(|v| v.version).collect();
        assert_eq!(left, vec![2, 4, 5]);
        assert_eq!(registry.current_version(), 5, "current is never pruned");
        // The lease keeps working after the prune.
        assert_eq!(lease2.version(), 2);

        // Release the lease: now 2 and 4 are prunable (keeping none).
        drop(lease2);
        assert_eq!(registry.prune_retired(0), 2);
        let left: Vec<u64> = registry.versions().iter().map(|v| v.version).collect();
        assert_eq!(left, vec![5]);
        // Nothing retired left: rollback correctly refuses, pruning is a
        // no-op, and serving continues on the current version.
        assert!(matches!(registry.rollback(), Err(ServeError::Registry(_))));
        assert_eq!(registry.prune_retired(0), 0);
        assert_eq!(registry.get().version(), 5);
    }

    #[test]
    fn prune_keeps_rollback_target_and_rollback_still_works() {
        let (a, _) = fitted(45);
        let registry = SnapshotRegistry::new(a.clone()).unwrap();
        registry.publish(a.clone()).unwrap();
        registry.publish(a).unwrap(); // current = 3
        assert_eq!(registry.prune_retired(1), 1, "version 1 expires, version 2 kept");
        assert_eq!(registry.rollback().unwrap(), 2, "rollback target survived the prune");
        // With current re-pointed at 2, version 3 is now retired; pruning
        // with keep_last = 1 keeps it (most recent retired).
        assert_eq!(registry.prune_retired(1), 0);
        assert_eq!(registry.versions().len(), 2);
    }

    #[test]
    fn rollback_refuses_to_land_on_a_pruned_predecessor() {
        let (a, _) = fitted(46);
        let registry = SnapshotRegistry::new(a.clone()).unwrap();
        registry.publish(a.clone()).unwrap();
        registry.publish(a.clone()).unwrap(); // versions 1..=3, current = 3
        assert_eq!(registry.prune_retired(0), 2, "both retired versions expire");
        // The publish-order predecessor (version 2) is gone. Before the
        // index-based walk was fixed, this silently "succeeded" by landing
        // on whatever older version survived; now it reports the pruned
        // target and the surviving versions.
        let err = registry.rollback().unwrap_err();
        match err {
            ServeError::Registry(msg) => {
                assert!(msg.contains("predecessor 2 was pruned"), "unexpected message: {msg}");
                assert!(msg.contains("[3]"), "must list surviving versions: {msg}");
            }
            other => panic!("expected Registry error, got {other:?}"),
        }
        // Current is untouched by the refused rollback.
        assert_eq!(registry.current_version(), 3);
        // A later publish restores a rollback target.
        registry.publish(a).unwrap(); // version 4
        assert_eq!(registry.rollback().unwrap(), 3);
    }

    #[test]
    fn get_is_consistent_under_concurrent_publish() {
        // Hammer get() while another thread publishes; every lease must be
        // a fully valid version, and the final current must be the last
        // publish.
        let (a, ds) = fitted(43);
        let img = ds.test_images()[0].clone();
        let b = FittedLabeler::load(&a.save_v2(false)).unwrap();
        let registry = Arc::new(SnapshotRegistry::new(a).unwrap());
        let publisher = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let next = FittedLabeler::load(&b.save()).unwrap();
                    registry.publish(next).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let img = img.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let lease = registry.get();
                        let (label, probs) = lease.labeler().label_one(&img);
                        assert!(label < probs.len());
                        lease.record_served(1);
                    }
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(registry.current_version(), 5);
        let total: u64 = registry.versions().iter().map(|v| v.served).sum();
        assert_eq!(total, 60);
    }
}

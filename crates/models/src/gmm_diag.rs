//! Gaussian mixture with **diagonal covariance** — the paper's base model.
//!
//! §4.1: "Instead of using the full covariance matrix Σ_k that models the
//! correlations between all pairs of columns in A_f, we use the diagonal
//! covariance matrix, which reduces the number of parameters significantly."
//! The M-step updates are Equation 10; the E-step is Equation 8.

use crate::em::{
    e_step_from_log_joint, hard_labels, relative_improvement, update_weights, EmOptions, FitStats,
};
use crate::kmeans::KMeans;
use crate::{ModelError, Result};
use goggles_tensor::Matrix;

const LOG_TAU: f64 = 1.837_877_066_409_345_5; // ln(2π)

/// Fitted diagonal-covariance Gaussian mixture.
#[derive(Debug, Clone)]
pub struct DiagonalGmm {
    /// Mixture weights π_k.
    pub weights: Vec<f64>,
    /// Component means, `k × d`.
    pub means: Matrix<f64>,
    /// Component **variances** (diagonal of Σ_k), `k × d`.
    pub variances: Matrix<f64>,
    /// Posterior responsibilities γ on the training data, `n × k`.
    pub responsibilities: Matrix<f64>,
    /// Fit diagnostics.
    pub stats: FitStats,
}

impl DiagonalGmm {
    /// Fit a `k`-component diagonal GMM on the rows of `data`.
    ///
    /// Each restart initializes responsibilities from a k-means++ partition
    /// and runs EM until the relative log-likelihood improvement drops below
    /// `opts.tol`. The restart with the best final likelihood wins.
    pub fn fit(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        validate(data, k)?;
        let mut best: Option<DiagonalGmm> = None;
        for r in 0..opts.restarts.max(1) {
            let rs = seed.wrapping_add((r as u64).wrapping_mul(0x51_7C_C1_B7_27_22_0A_95));
            let fit = Self::fit_once(data, k, opts, rs)?;
            if best.as_ref().is_none_or(|b| fit.stats.log_likelihood > b.stats.log_likelihood) {
                best = Some(fit);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    fn fit_once(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        let n = data.rows();
        let d = data.cols();
        // --- init from k-means hard partition ---
        let km = KMeans::fit(data, k, 1, seed)?;
        let mut resp = Matrix::<f64>::zeros(n, k);
        for (i, &lbl) in km.labels.iter().enumerate() {
            resp[(i, lbl)] = 1.0;
        }
        let mut weights = vec![1.0 / k as f64; k];
        let mut means = Matrix::<f64>::zeros(k, d);
        let mut variances = Matrix::<f64>::zeros(k, d);
        m_step(data, &resp, &mut weights, &mut means, &mut variances, opts.var_floor);
        em_loop(data, opts, weights, means, variances, resp)
    }

    /// Warm-start EM from the given parameters: no k-means init, no
    /// restarts, no RNG at all. The E-step runs first, so the returned fit
    /// is at least as likely as the starting point, and the whole path is
    /// deterministic in the parameters alone — the property the trainer's
    /// cross-thread-count determinism tests rely on.
    pub fn fit_from(
        data: &Matrix<f64>,
        weights: &[f64],
        means: &Matrix<f64>,
        variances: &Matrix<f64>,
        opts: &EmOptions,
    ) -> Result<Self> {
        let k = weights.len();
        validate(data, k)?;
        if means.shape() != (k, data.cols()) || variances.shape() != (k, data.cols()) {
            return Err(ModelError::InvalidParameter(format!(
                "warm-start shapes {:?}/{:?} incompatible with k={k}, d={}",
                means.shape(),
                variances.shape(),
                data.cols()
            )));
        }
        let resp = Matrix::<f64>::zeros(data.rows(), k);
        em_loop(data, opts, weights.to_vec(), means.clone(), variances.clone(), resp)
    }

    /// Posterior `P(y = k | x)` for each row of `data` (n × k).
    pub fn predict_proba(&self, data: &Matrix<f64>) -> Matrix<f64> {
        let n = data.rows();
        let k = self.weights.len();
        let mut log_joint = Matrix::<f64>::zeros(n, k);
        fill_log_joint(data, &self.weights, &self.means, &self.variances, &mut log_joint);
        let mut resp = Matrix::<f64>::zeros(n, k);
        let _ = e_step_from_log_joint(&log_joint, &mut resp);
        resp
    }

    /// Hard labels on the training data.
    pub fn train_labels(&self) -> Vec<usize> {
        hard_labels(&self.responsibilities)
    }

    /// Number of free parameters: `K(2d + 1) - 1` (means, variances,
    /// weights). The paper's §4.1 parameter-count argument.
    // goggles-lint: allow(dead-pub): BIC/model-selection statistic the paper reports; exercised only by unit tests
    pub fn n_parameters(&self) -> usize {
        let k = self.weights.len();
        let d = self.means.cols();
        k * (2 * d + 1) - 1
    }
}

/// Shared EM loop: alternate E-step (Equation 8) and M-step (Equation 10)
/// from the given starting parameters until the relative log-likelihood
/// improvement drops below `opts.tol`.
fn em_loop(
    data: &Matrix<f64>,
    opts: &EmOptions,
    mut weights: Vec<f64>,
    mut means: Matrix<f64>,
    mut variances: Matrix<f64>,
    mut resp: Matrix<f64>,
) -> Result<DiagonalGmm> {
    let mut log_joint = Matrix::<f64>::zeros(data.rows(), weights.len());
    let mut prev_ll = f64::NEG_INFINITY;
    let mut ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        fill_log_joint(data, &weights, &means, &variances, &mut log_joint);
        ll = e_step_from_log_joint(&log_joint, &mut resp);
        if !ll.is_finite() {
            return Err(ModelError::Numerical(format!("log-likelihood became {ll}")));
        }
        if relative_improvement(prev_ll, ll) < opts.tol {
            converged = true;
            break;
        }
        prev_ll = ll;
        m_step(data, &resp, &mut weights, &mut means, &mut variances, opts.var_floor);
    }
    Ok(DiagonalGmm {
        weights,
        means,
        variances,
        responsibilities: resp,
        stats: FitStats { log_likelihood: ll, iterations, converged },
    })
}

fn validate(data: &Matrix<f64>, k: usize) -> Result<()> {
    if data.rows() == 0 || data.cols() == 0 {
        return Err(ModelError::EmptyInput);
    }
    if k == 0 {
        return Err(ModelError::InvalidParameter("k must be ≥ 1".into()));
    }
    if data.rows() < k {
        return Err(ModelError::TooFewSamples { samples: data.rows(), components: k });
    }
    Ok(())
}

/// Fill `log_joint[i,k] = log π_k + log N(x_i | μ_k, diag σ²_k)`.
fn fill_log_joint(
    data: &Matrix<f64>,
    weights: &[f64],
    means: &Matrix<f64>,
    variances: &Matrix<f64>,
    out: &mut Matrix<f64>,
) {
    let k = weights.len();
    // Precompute per-component log-normalizers: -½ Σ_j (ln 2π + ln σ²_j).
    let mut log_norm = vec![0.0f64; k];
    for (c, ln) in log_norm.iter_mut().enumerate() {
        let mut acc = 0.0;
        for &v in variances.row(c) {
            acc += LOG_TAU + v.ln();
        }
        *ln = weights[c].ln() - 0.5 * acc;
    }
    for (i, row) in data.rows_iter().enumerate() {
        let out_row = out.row_mut(i);
        for c in 0..k {
            let mu = means.row(c);
            let var = variances.row(c);
            let mut maha = 0.0;
            for ((&x, &m), &v) in row.iter().zip(mu).zip(var) {
                let dsq = (x - m) * (x - m);
                maha += dsq / v;
            }
            out_row[c] = log_norm[c] - 0.5 * maha;
        }
    }
}

/// Equation 10 of the paper: update π, μ and diagonal Σ from the current
/// responsibilities. Variances are floored at `var_floor`.
fn m_step(
    data: &Matrix<f64>,
    resp: &Matrix<f64>,
    weights: &mut [f64],
    means: &mut Matrix<f64>,
    variances: &mut Matrix<f64>,
    var_floor: f64,
) {
    let d = data.cols();
    let k = weights.len();
    let (w, nk) = update_weights(resp);
    weights.copy_from_slice(&w);
    // means
    for c in 0..k {
        means.row_mut(c).fill(0.0);
    }
    for (i, row) in data.rows_iter().enumerate() {
        let g = resp.row(i);
        for c in 0..k {
            let gc = g[c];
            if gc == 0.0 {
                continue;
            }
            for (m, &x) in means.row_mut(c).iter_mut().zip(row) {
                *m += gc * x;
            }
        }
    }
    for c in 0..k {
        let inv = 1.0 / nk[c].max(1e-12);
        for m in means.row_mut(c) {
            *m *= inv;
        }
    }
    // variances
    for c in 0..k {
        variances.row_mut(c).fill(0.0);
    }
    for (i, row) in data.rows_iter().enumerate() {
        let g = resp.row(i);
        for c in 0..k {
            let gc = g[c];
            if gc == 0.0 {
                continue;
            }
            let mu = means.row(c);
            // Manual index loop keeps a single pass over the row.
            let var_row = variances.row_mut(c);
            for j in 0..d {
                let dx = row[j] - mu[j];
                var_row[j] += gc * dx * dx;
            }
        }
    }
    for c in 0..k {
        let inv = 1.0 / nk[c].max(1e-12);
        for v in variances.row_mut(c) {
            *v = (*v * inv).max(var_floor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    fn gaussian_blobs(n_per: usize, sep: f64, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (c, lbl) in [(-sep, 0usize), (sep, 1)] {
            for _ in 0..n_per {
                rows.push([c + normal(&mut rng), c + 0.5 * normal(&mut rng)]);
                truth.push(lbl);
            }
        }
        (Matrix::from_fn(rows.len(), 2, |i, j| rows[i][j]), truth)
    }

    fn binary_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    #[test]
    fn recovers_separated_components() {
        let (data, truth) = gaussian_blobs(100, 4.0, 1);
        let gmm = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(binary_accuracy(&gmm.train_labels(), &truth) > 0.99);
        // means close to ±4
        let m0 = gmm.means[(0, 0)];
        let m1 = gmm.means[(1, 0)];
        assert!((m0.abs() - 4.0).abs() < 0.5 && (m1.abs() - 4.0).abs() < 0.5);
        assert!(m0.signum() != m1.signum());
    }

    #[test]
    fn recovers_anisotropic_variances() {
        let (data, _) = gaussian_blobs(400, 5.0, 2);
        let gmm = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        for c in 0..2 {
            // dim 0 has σ=1, dim 1 has σ=0.5 → var 1.0 vs 0.25
            assert!((gmm.variances[(c, 0)] - 1.0).abs() < 0.3, "{:?}", gmm.variances);
            assert!((gmm.variances[(c, 1)] - 0.25).abs() < 0.12, "{:?}", gmm.variances);
        }
    }

    #[test]
    fn log_likelihood_is_monotone_over_iterations() {
        // EM guarantees non-decreasing likelihood; verify via two fits with
        // different iteration caps sharing the same seed and single restart.
        let (data, _) = gaussian_blobs(60, 2.0, 3);
        let short = DiagonalGmm::fit(
            &data,
            2,
            &EmOptions { max_iters: 2, restarts: 1, ..EmOptions::default() },
            9,
        )
        .unwrap();
        let long = DiagonalGmm::fit(
            &data,
            2,
            &EmOptions { max_iters: 50, restarts: 1, ..EmOptions::default() },
            9,
        )
        .unwrap();
        assert!(long.stats.log_likelihood >= short.stats.log_likelihood - 1e-9);
    }

    #[test]
    fn responsibilities_rows_sum_to_one() {
        let (data, _) = gaussian_blobs(40, 3.0, 4);
        let gmm = DiagonalGmm::fit(&data, 3, &EmOptions::default(), 1).unwrap();
        for i in 0..data.rows() {
            let s: f64 = gmm.responsibilities.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        let probs = gmm.predict_proba(&data);
        for i in 0..data.rows() {
            let s: f64 = probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn variance_floor_protects_degenerate_dims() {
        // Second dimension is constant: naive variance would be 0.
        let data = Matrix::from_fn(20, 2, |i, j| if j == 0 { i as f64 } else { 3.0 });
        let gmm = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        for c in 0..2 {
            assert!(gmm.variances[(c, 1)] >= 1e-6);
        }
        assert!(gmm.stats.log_likelihood.is_finite());
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = gaussian_blobs(50, 2.0, 5);
        let a = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 11).unwrap();
        let b = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 11).unwrap();
        assert_eq!(a.train_labels(), b.train_labels());
        assert_eq!(a.stats.log_likelihood, b.stats.log_likelihood);
    }

    #[test]
    fn warm_start_matches_or_improves_and_is_deterministic() {
        let (data, _) = gaussian_blobs(60, 3.0, 8);
        let cold = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 7).unwrap();
        let warm = DiagonalGmm::fit_from(
            &data,
            &cold.weights,
            &cold.means,
            &cold.variances,
            &EmOptions::default(),
        )
        .unwrap();
        assert!(warm.stats.log_likelihood >= cold.stats.log_likelihood - 1e-9);
        // Warm restart from a converged fit should terminate almost at once.
        assert!(warm.stats.converged && warm.stats.iterations <= 3, "{:?}", warm.stats);
        let again = DiagonalGmm::fit_from(
            &data,
            &cold.weights,
            &cold.means,
            &cold.variances,
            &EmOptions::default(),
        )
        .unwrap();
        assert_eq!(warm.stats.log_likelihood, again.stats.log_likelihood);
        assert_eq!(warm.means.as_slice(), again.means.as_slice());
    }

    #[test]
    fn warm_start_rejects_mismatched_shapes() {
        let (data, _) = gaussian_blobs(30, 2.0, 9);
        let fit = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        let bad = Matrix::<f64>::zeros(2, 5);
        assert!(matches!(
            DiagonalGmm::fit_from(&data, &fit.weights, &bad, &fit.variances, &EmOptions::default()),
            Err(ModelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn parameter_count_formula() {
        let (data, _) = gaussian_blobs(30, 2.0, 6);
        let gmm = DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        // K(2d+1)-1 with K=2, d=2 → 9
        assert_eq!(gmm.n_parameters(), 9);
    }

    #[test]
    fn input_validation() {
        let empty = Matrix::<f64>::zeros(0, 3);
        assert!(matches!(
            DiagonalGmm::fit(&empty, 2, &EmOptions::default(), 0),
            Err(ModelError::EmptyInput)
        ));
        let tiny = Matrix::<f64>::zeros(1, 3);
        assert!(matches!(
            DiagonalGmm::fit(&tiny, 2, &EmOptions::default(), 0),
            Err(ModelError::TooFewSamples { .. })
        ));
    }
}

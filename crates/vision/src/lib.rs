//! # goggles-vision
//!
//! Image substrate for the GOGGLES reproduction.
//!
//! The paper evaluates on five real image corpora (CUB birds, GTSRB traffic
//! signs, industrial surface finishes, two chest X-ray sets) that cannot be
//! redistributed here. The dataset generators in `goggles-datasets` instead
//! synthesize images with the same *task structure*; this crate provides the
//! pieces those generators (and the HOG representation baseline of §5.1.5)
//! are built from:
//!
//! * [`Image`] — a `C×H×W` float image with pixel accessors,
//! * [`draw`] — shapes, stripes, glyph strokes and blobs placed at arbitrary
//!   positions (class evidence may appear anywhere in the frame, which is
//!   precisely why the paper's affinity functions take a spatial max),
//! * [`noise`] — value-noise textures, speckle and Gaussian pixel noise,
//! * [`filter`] — separable Gaussian blur, Sobel gradients, bilinear resize,
//! * [`hog`] — the Histogram-of-Oriented-Gradients descriptor used as a
//!   representation baseline in Table 1,
//! * [`io`] — netpbm (PPM/PGM) read/write so generated datasets can be
//!   inspected with any image viewer.

pub mod draw;
pub mod filter;
pub mod hog;
pub mod image;
pub mod io;
pub mod noise;

pub use hog::{hog_descriptor, HogParams};
pub use image::Image;
pub use io::{read_pnm, write_pnm, PnmError};

//! End-to-end integration tests: the full GOGGLES pipeline (datasets →
//! backbone → affinity → hierarchical inference → dev mapping) across every
//! dataset family, exercised through the public facade exactly as a
//! downstream user would.

use goggles::prelude::*;

fn small_task(kind: TaskKind, seed: u64) -> Dataset {
    let mut cfg = TaskConfig::new(kind, 12, 4, seed);
    cfg.image_size = 32;
    generate(&cfg)
}

fn fast_goggles(seed: u64) -> Goggles {
    Goggles::new(GogglesConfig { seed, ..GogglesConfig::fast() })
}

#[test]
fn pipeline_runs_on_every_dataset_family() {
    let kinds = [
        TaskKind::Cub { class_a: 0, class_b: 1 },
        TaskKind::Gtsrb { class_a: 0, class_b: 8 },
        TaskKind::Surface,
        TaskKind::TbXray,
        TaskKind::PnXray,
    ];
    let goggles = fast_goggles(0);
    for kind in kinds {
        let ds = small_task(kind, 3);
        let dev = ds.sample_dev_set(3, 3);
        let result = goggles.label_dataset(&ds, &dev).expect("pipeline");
        assert_eq!(result.labels.probs.rows(), ds.train_indices.len(), "{kind:?}");
        // rows are probability distributions
        for i in 0..result.labels.probs.rows() {
            let s: f64 = result.labels.probs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{kind:?} row {i}");
        }
        // mapping is a permutation of {0, 1}
        let mut m = result.mapping.clone();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1], "{kind:?}");
    }
}

#[test]
fn easy_color_task_labels_accurately() {
    // CUB with distinct species colors is the paper's easiest regime.
    let ds = small_task(TaskKind::Cub { class_a: 0, class_b: 1 }, 7);
    let dev = ds.sample_dev_set(3, 7);
    let result = fast_goggles(1).label_dataset(&ds, &dev).expect("pipeline");
    let acc = result.accuracy_excluding_dev(&ds, &dev);
    assert!(acc > 0.75, "easy CUB accuracy = {acc}");
}

#[test]
fn full_pipeline_is_deterministic() {
    let ds = small_task(TaskKind::Surface, 5);
    let dev = ds.sample_dev_set(3, 5);
    let a = fast_goggles(9).label_dataset(&ds, &dev).expect("run a");
    let b = fast_goggles(9).label_dataset(&ds, &dev).expect("run b");
    assert_eq!(a.labels.hard_labels(), b.labels.hard_labels());
    assert_eq!(a.mapping, b.mapping);
    assert_eq!(a.model.ensemble.stats.log_likelihood, b.model.ensemble.stats.log_likelihood);
}

#[test]
fn affinity_matrix_has_paper_geometry() {
    // A ∈ R^{N×αN} with α = 5 Z (Section 3 discussion).
    let ds = small_task(TaskKind::Surface, 11);
    let goggles = fast_goggles(2);
    let am = goggles.build_affinity_matrix(&ds.train_images());
    let n = ds.train_indices.len();
    let alpha = 5 * goggles.config().top_z;
    assert_eq!(am.data.shape(), (n, alpha * n));
    // Cosine scores live in [-1, 1].
    assert!(am.data.as_slice().iter().all(|v| (-1.0001..=1.0001).contains(v)));
    // Self-affinity: an image's own prototype is among its own patches, so
    // the diagonal of every function block is (numerically) 1 — except for
    // layers whose pooled map has a single spatial position (pool-5 at 32px
    // input), where per-image centering blanks the lone patch and the
    // function is legitimately uninformative (the ensemble discounts it).
    let z = goggles.config().top_z;
    for f in 0..alpha {
        let layer = f / z;
        if goggles.config().vgg.pool_size(layer) < 2 {
            continue;
        }
        let block = am.function_block(f);
        for i in 0..n {
            assert!(block[(i, i)] > 0.999, "f={f} i={i}: {}", block[(i, i)]);
        }
    }
}

#[test]
fn more_dev_labels_never_flip_a_good_mapping() {
    let ds = small_task(TaskKind::Cub { class_a: 2, class_b: 3 }, 13);
    let goggles = fast_goggles(3);
    let dev5 = ds.sample_dev_set(5, 13);
    let r5 = goggles.label_dataset(&ds, &dev5).expect("dev5");
    let acc5 = r5.accuracy(&ds);
    // With a larger dev set the mapping can only get more reliable.
    let dev6 = ds.sample_dev_set(6, 13);
    let r6 = goggles.label_dataset(&ds, &dev6).expect("dev6");
    let acc6 = r6.accuracy(&ds);
    assert!(acc6 >= acc5 - 0.1, "larger dev set should not collapse accuracy: {acc5} → {acc6}");
}

#[test]
fn probabilistic_labels_feed_downstream_training() {
    // §2.1: the labels' purpose is to train a downstream model.
    use goggles::endmodel::{accuracy, one_hot_labels, standardize_fit, MlpHead, TrainConfig};
    use goggles::tensor::Matrix;

    // End-model features need the full-width backbone at 64px: the tiny
    // 32px configuration funnels pool-5 through a 1x1x16 bottleneck and its
    // logits carry almost no class information (fine for affinity coding,
    // useless for a feature head).
    let cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 15, 8, 17);
    let ds = generate(&cfg);
    let dev = ds.sample_dev_set(4, 17);
    let goggles = Goggles::new(GogglesConfig { seed: 4, top_z: 4, ..GogglesConfig::default() });
    let result = goggles.label_dataset(&ds, &dev).expect("labels");

    let to_f64 = |m: &Matrix<f32>| Matrix::from_fn(m.rows(), m.cols(), |i, j| m[(i, j)] as f64);
    let train_imgs: Vec<Image> = ds.train_images().iter().map(|&i| i.clone()).collect();
    let test_imgs: Vec<Image> = ds.test_images().iter().map(|&i| i.clone()).collect();
    let train_raw = to_f64(&goggles.backbone().logits_batch(&train_imgs));
    let test_raw = to_f64(&goggles.backbone().logits_batch(&test_imgs));
    let std = standardize_fit(&train_raw);
    let (train, test) = (std.transform(&train_raw), std.transform(&test_raw));

    let cfg = TrainConfig { epochs: 120, ..TrainConfig::default() };
    let weak = MlpHead::train(&train, &result.labels.probs, 16, &cfg);
    let weak_acc = accuracy(&weak.predict(&test), &ds.test_labels());

    let upper = MlpHead::train(&train, &one_hot_labels(&ds.train_labels(), 2), 16, &cfg);
    let upper_acc = accuracy(&upper.predict(&test), &ds.test_labels());

    assert!(weak_acc > 0.5, "weakly-supervised end model at chance: {weak_acc}");
    assert!(
        upper_acc >= weak_acc - 0.15,
        "upper bound ({upper_acc}) should not trail GOGGLES ({weak_acc}) badly"
    );
}

//! Property tests (vendored proptest shim) of the blocked fused
//! matmul + column-max kernel — the affinity hot path. The blocked kernel
//! must agree with the naive scalar kernel within 1e-5 on random shapes,
//! be bit-deterministic, and be shard-stable (computing any sub-range of
//! prototype rows matches the corresponding slice of the full result,
//! which is the contract intra-request sharding relies on).

use goggles_tensor::rng::{normal, std_rng};
use goggles_tensor::{
    colmax_matmul_f32, colmax_matmul_naive_f32, colmax_matmul_panel_f32, colmax_matmul_scratch_f32,
    ColmaxPanel, ColmaxScratch,
};
use proptest::prelude::*;

/// Deterministic random panel of `rows × cols` f32 values in roughly ±3.
fn random_panel(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut rng = std_rng(seed);
    (0..rows * cols).map(|_| normal(&mut rng) as f32).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked kernel ≡ naive scalar kernel within 1e-5 on random shapes.
    #[test]
    fn blocked_matches_naive(
        m in 0usize..24,
        n in 1usize..48,
        cols in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = random_panel(m, cols, seed);
        let b = random_panel(n, cols, seed ^ 0xB17);
        let mut blocked = vec![0.0f32; n];
        let mut naive = vec![0.0f32; n];
        colmax_matmul_f32(&a, &b, cols, &mut blocked);
        colmax_matmul_naive_f32(&a, &b, cols, &mut naive);
        for (j, (x, y)) in blocked.iter().zip(&naive).enumerate() {
            if m == 0 {
                prop_assert!(*x == f32::NEG_INFINITY && *y == f32::NEG_INFINITY);
            } else {
                prop_assert!(
                    (x - y).abs() < 1e-5,
                    "m={m} n={n} cols={cols} j={j}: blocked {x} vs naive {y}"
                );
            }
        }
    }

    /// Same inputs ⇒ bit-identical outputs, and any shard of the prototype
    /// rows is bit-identical to the matching slice of the full result.
    #[test]
    fn blocked_is_deterministic_and_shard_stable(
        m in 1usize..16,
        n in 1usize..40,
        cols in 1usize..32,
        cut in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let a = random_panel(m, cols, seed);
        let b = random_panel(n, cols, seed ^ 0x5EED);
        let mut first = vec![0.0f32; n];
        let mut second = vec![0.0f32; n];
        colmax_matmul_f32(&a, &b, cols, &mut first);
        colmax_matmul_f32(&a, &b, cols, &mut second);
        prop_assert_eq!(
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            second.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Shard at an arbitrary row boundary: both halves, recomputed
        // independently, must reproduce the full result bit-for-bit.
        let cut = cut % (n + 1);
        let mut lo = vec![0.0f32; cut];
        let mut hi = vec![0.0f32; n - cut];
        colmax_matmul_f32(&a, &b[..cut * cols], cols, &mut lo);
        colmax_matmul_f32(&a, &b[cut * cols..], cols, &mut hi);
        lo.extend_from_slice(&hi);
        prop_assert_eq!(
            lo.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            first.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "cut at {}", cut
        );
    }

    /// The cached-transpose panel kernel is bit-identical to the uncached
    /// kernel on every row shard `[lo, hi)` — the contract that lets a
    /// frozen bank pre-transpose its prototypes once and serve all
    /// subsequent requests (and all intra-request shards) from the cache.
    /// `m` ranges across both the tall (`m ≥ 2·cols`) and wide paths.
    #[test]
    fn panel_kernel_matches_uncached_on_every_shard(
        m in 0usize..40,
        n in 1usize..40,
        cols in 1usize..16,
        lo in 0usize..40,
        span in 0usize..40,
        seed in 0u64..1_000,
    ) {
        let a = random_panel(m, cols, seed);
        let b = random_panel(n, cols, seed ^ 0x9A7E1);
        let panel = ColmaxPanel::new(&b, cols);
        prop_assert_eq!(panel.rows(), n);
        prop_assert_eq!(panel.cols(), cols);
        let mut full = vec![0.0f32; n];
        colmax_matmul_f32(&a, &b, cols, &mut full);
        let lo = lo % n;
        let hi = (lo + 1 + span % n).min(n);
        let mut shard = vec![0.0f32; hi - lo];
        let mut scratch = ColmaxScratch::default();
        colmax_matmul_panel_f32(&mut scratch, &a, &b, &panel, lo, &mut shard);
        prop_assert_eq!(
            shard.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            full[lo..hi].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "shard [{}, {}) of {} rows, m={} cols={}", lo, hi, n, m, cols
        );
        // Scratch reuse across differently-shaped calls stays bit-stable.
        let mut again = vec![0.0f32; n];
        colmax_matmul_panel_f32(&mut scratch, &a, &b, &panel, 0, &mut again);
        prop_assert_eq!(
            again.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            full.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// The scratch-reusing (panel-less) kernel is bit-identical to the
    /// allocating one — callers that loop over many queries can keep one
    /// `ColmaxScratch` hot without perturbing results.
    #[test]
    fn scratch_kernel_matches_allocating_kernel(
        m in 0usize..32,
        n in 1usize..40,
        cols in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let a = random_panel(m, cols, seed);
        let b = random_panel(n, cols, seed ^ 0x5C2A7C4);
        let mut plain = vec![0.0f32; n];
        colmax_matmul_f32(&a, &b, cols, &mut plain);
        let mut scratch = ColmaxScratch::default();
        let mut reused = vec![0.0f32; n];
        colmax_matmul_scratch_f32(&mut scratch, &a, &b, cols, &mut reused);
        prop_assert_eq!(
            reused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // Second call with the warm scratch: still bit-identical.
        let mut warm = vec![0.0f32; n];
        colmax_matmul_scratch_f32(&mut scratch, &a, &b, cols, &mut warm);
        prop_assert_eq!(
            warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            plain.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

//! K-means clustering with k-means++ seeding (Arthur & Vassilvitskii 2007).
//!
//! Serves two roles: the `K-Means` baseline column of Table 1, and the
//! initializer for every EM mixture model in this crate (responsibilities
//! start from a hard k-means partition, which is the standard practice the
//! paper's reference implementation follows).

use crate::{ModelError, Result};
use goggles_tensor::rng::{sample_weighted, std_rng};
use goggles_tensor::Matrix;
use rand::Rng;

/// Fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster centroids, `k × d`.
    pub centroids: Matrix<f64>,
    /// Hard assignment of each training row.
    pub labels: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed by the winning restart.
    pub iterations: usize,
}

impl KMeans {
    /// Fit `k` clusters on the rows of `data` with `restarts` k-means++
    /// restarts (best inertia wins). Deterministic given `seed`.
    pub fn fit(data: &Matrix<f64>, k: usize, restarts: usize, seed: u64) -> Result<Self> {
        let n = data.rows();
        let d = data.cols();
        if n == 0 || d == 0 {
            return Err(ModelError::EmptyInput);
        }
        if k == 0 {
            return Err(ModelError::InvalidParameter("k must be ≥ 1".into()));
        }
        if n < k {
            return Err(ModelError::TooFewSamples { samples: n, components: k });
        }
        let mut best: Option<KMeans> = None;
        for r in 0..restarts.max(1) {
            let mut rng = std_rng(seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let fit = Self::fit_once(data, k, &mut rng);
            if best.as_ref().is_none_or(|b| fit.inertia < b.inertia) {
                best = Some(fit);
            }
        }
        Ok(best.expect("at least one restart"))
    }

    fn fit_once<R: Rng + ?Sized>(data: &Matrix<f64>, k: usize, rng: &mut R) -> KMeans {
        let n = data.rows();
        let d = data.cols();
        let mut centroids = kmeans_pp_init(data, k, rng);
        let mut labels = vec![0usize; n];
        let mut iterations = 0;
        let max_iters = 100;
        let mut prev_inertia = f64::INFINITY;
        let mut inertia = f64::INFINITY;
        for it in 0..max_iters {
            iterations = it + 1;
            // Assignment step.
            inertia = 0.0;
            for (i, row) in data.rows_iter().enumerate() {
                let (lbl, dist) = nearest_centroid(row, &centroids);
                labels[i] = lbl;
                inertia += dist;
            }
            // Update step.
            let mut sums = Matrix::<f64>::zeros(k, d);
            let mut counts = vec![0usize; k];
            for (i, row) in data.rows_iter().enumerate() {
                counts[labels[i]] += 1;
                for (s, &v) in sums.row_mut(labels[i]).iter_mut().zip(row) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid (standard fix; keeps k clusters alive).
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = sq_dist(data.row(a), centroids.row(labels[a]));
                            let db = sq_dist(data.row(b), centroids.row(labels[b]));
                            da.total_cmp(&db)
                        })
                        .expect("non-empty data");
                    centroids.row_mut(c).copy_from_slice(data.row(far));
                } else {
                    let inv = 1.0 / counts[c] as f64;
                    let row = sums.row(c).to_vec();
                    for (cv, sv) in centroids.row_mut(c).iter_mut().zip(row) {
                        *cv = sv * inv;
                    }
                }
            }
            if (prev_inertia - inertia).abs() <= 1e-10 * prev_inertia.abs().max(1.0) {
                break;
            }
            prev_inertia = inertia;
        }
        KMeans { centroids, labels, inertia, iterations }
    }

    /// Assign new rows to the nearest centroid.
    pub fn predict(&self, data: &Matrix<f64>) -> Vec<usize> {
        data.rows_iter().map(|row| nearest_centroid(row, &self.centroids).0).collect()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }
}

/// Squared Euclidean distance between two equally-long slices.
#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// `(argmin_c dist², min dist²)` over centroids.
fn nearest_centroid(row: &[f64], centroids: &Matrix<f64>) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, cent) in centroids.rows_iter().enumerate() {
        let d = sq_dist(row, cent);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centroid uniform, each further centroid drawn
/// with probability proportional to its squared distance from the nearest
/// chosen centroid.
fn kmeans_pp_init<R: Rng + ?Sized>(data: &Matrix<f64>, k: usize, rng: &mut R) -> Matrix<f64> {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Matrix::<f64>::zeros(k, d);
    let first = rng.random_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dists: Vec<f64> = data.rows_iter().map(|row| sq_dist(row, centroids.row(0))).collect();
    for c in 1..k {
        let idx = sample_weighted(rng, &dists);
        centroids.row_mut(c).copy_from_slice(data.row(idx));
        for (i, row) in data.rows_iter().enumerate() {
            let nd = sq_dist(row, centroids.row(c));
            if nd < dists[i] {
                dists[i] = nd;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    /// Two well-separated Gaussian blobs; returns (data, truth).
    fn blobs(n_per: usize, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (label, center) in [(-5.0f64, 0usize), (5.0, 1)].map(|(c, l)| (c, l)) {
            for _ in 0..n_per {
                rows.push(vec![label + normal(&mut rng) * 0.5, label + normal(&mut rng) * 0.5]);
                truth.push(center);
            }
        }
        let data = Matrix::from_fn(rows.len(), 2, |i, j| rows[i][j]);
        (data, truth)
    }

    /// Fraction of points whose cluster id matches truth up to the best of
    /// the two possible label permutations.
    fn binary_cluster_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    #[test]
    fn separates_two_blobs_perfectly() {
        let (data, truth) = blobs(50, 1);
        let km = KMeans::fit(&data, 2, 3, 42).unwrap();
        assert!(binary_cluster_accuracy(&km.labels, &truth) > 0.99);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs(50, 2);
        let k1 = KMeans::fit(&data, 1, 1, 0).unwrap();
        let k2 = KMeans::fit(&data, 2, 3, 0).unwrap();
        let k4 = KMeans::fit(&data, 4, 3, 0).unwrap();
        assert!(k2.inertia < k1.inertia);
        assert!(k4.inertia <= k2.inertia);
    }

    #[test]
    fn predict_matches_training_labels() {
        let (data, _) = blobs(30, 3);
        let km = KMeans::fit(&data, 2, 2, 7).unwrap();
        assert_eq!(km.predict(&data), km.labels);
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = blobs(30, 4);
        let a = KMeans::fit(&data, 2, 2, 5).unwrap();
        let b = KMeans::fit(&data, 2, 2, 5).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0]]);
        let km = KMeans::fit(&data, 3, 2, 0).unwrap();
        assert!(km.inertia < 1e-12);
    }

    #[test]
    fn input_validation() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert!(matches!(KMeans::fit(&data, 3, 1, 0), Err(ModelError::TooFewSamples { .. })));
        assert!(matches!(KMeans::fit(&data, 0, 1, 0), Err(ModelError::InvalidParameter(_))));
        let empty = Matrix::<f64>::zeros(0, 2);
        assert!(matches!(KMeans::fit(&empty, 1, 1, 0), Err(ModelError::EmptyInput)));
    }

    #[test]
    fn identical_points_dont_crash() {
        let data = Matrix::filled(10, 3, 1.5);
        let km = KMeans::fit(&data, 2, 2, 0).unwrap();
        assert_eq!(km.labels.len(), 10);
        assert!(km.inertia < 1e-12);
    }
}

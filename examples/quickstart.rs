//! Quickstart: label an unlabeled image collection with GOGGLES.
//!
//! Mirrors the paper's Figure 3 pipeline end-to-end on a synthetic
//! surface-inspection task: generate unlabeled images, hand GOGGLES five
//! labeled examples per class, get probabilistic labels back.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use goggles::prelude::*;

fn main() {
    // 1. An "unlabeled" dataset. In a real deployment these are your raw
    //    images; here a generator stands in for the paper's corpora.
    let task = TaskConfig::new(TaskKind::Surface, 40, 10, 42);
    let dataset = generate(&task);
    println!(
        "dataset: {} — {} unlabeled training images, {} held-out",
        dataset.name,
        dataset.train_indices.len(),
        dataset.test_indices.len()
    );

    // 2. The only supervision GOGGLES needs: 5 labels per class (§5.1.1).
    let dev = dataset.sample_dev_set(5, 42);
    println!("development set: {} labeled examples", dev.len());

    // 3. Run affinity coding. `GogglesConfig::fast()` uses the reduced
    //    backbone; swap in `GogglesConfig::default()` for the full-size
    //    VGG-16 topology with Z = 10 (α = 50 affinity functions).
    let goggles = Goggles::new(GogglesConfig::fast());
    let result = goggles.label_dataset(&dataset, &dev).expect("pipeline failed");

    // 4. Inspect the output: probabilistic labels for every instance.
    let probs = &result.labels.probs;
    println!("\nfirst five probabilistic labels:");
    for i in 0..5.min(probs.rows()) {
        println!(
            "  image {:>3}: P(good) = {:.3}  P(bad) = {:.3}",
            result.row_indices[i],
            probs[(i, 0)],
            probs[(i, 1)]
        );
    }
    // Optional: dump a few generated images as PPM for visual inspection.
    let out_dir = std::path::Path::new("results/samples");
    for (i, &idx) in dataset.train_indices.iter().take(4).enumerate() {
        let path = out_dir.join(format!("surface_{i}_class{}.ppm", dataset.labels[idx]));
        if goggles::vision::write_pnm(&dataset.images[idx], &path).is_ok() {
            println!("wrote {}", path.display());
        }
    }

    println!("\ncluster→class mapping chosen by the dev set: {:?}", result.mapping);
    println!(
        "labeling accuracy (excluding dev, the paper's metric): {:.2}%",
        100.0 * result.accuracy_excluding_dev(&dataset, &dev)
    );
    println!("mean label confidence: {:.3}", result.labels.mean_confidence());
}

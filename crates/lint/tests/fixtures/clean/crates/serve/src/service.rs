//! Fixture: hot-path code that is panic-free, annotated, or test-only.

pub fn checked(xs: &[u8]) -> Option<u8> {
    xs.first().copied()
}

pub fn annotated(xs: &[u8]) -> u8 {
    // goggles-lint: allow(panic): fixture exercises the standalone-comment scope
    xs.first().unwrap() + xs[0] // goggles-lint: allow(index): fixture exercises trailing-comment scope
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let xs = [1u8];
        assert_eq!(xs[0], xs.first().copied().unwrap());
    }
}

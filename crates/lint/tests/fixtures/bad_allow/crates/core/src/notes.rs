//! Fixture: malformed allow annotations are themselves violations.

// goggles-lint: allow(no-such-rule): misspelled rule names must not pass silently
pub fn f() {}

// goggles-lint: allow(panic)
pub fn g() {}

//! Spectral co-clustering (Dhillon, "Co-clustering documents and words using
//! bipartite spectral graph partitioning", KDD 2001) — the `Spectral`
//! baseline column of Table 1.
//!
//! Given a non-negative relation matrix `A (n × m)` the algorithm:
//! 1. normalizes `An = D₁^{-1/2} A D₂^{-1/2}`,
//! 2. takes the `ℓ = ⌈log₂ k⌉ + 1` leading singular vector pairs of `An`
//!    (dropping the trivial first pair),
//! 3. embeds rows as `D₁^{-1/2} U` and columns as `D₂^{-1/2} V`,
//! 4. runs k-means on the stacked embedding and reads off row labels.
//!
//! Singular vectors are obtained from the eigen-decomposition of the smaller
//! Gram matrix (`An Anᵀ` or `Anᵀ An`) via orthogonal iteration, so the
//! routine stays `O(min(n, m)² · max(n, m))` — important because GOGGLES
//! feeds it the full `N × αN` affinity matrix.

use crate::kmeans::KMeans;
use crate::{ModelError, Result};
use goggles_tensor::{orthogonal_iteration, Matrix};

/// Fitted spectral co-clustering model.
#[derive(Debug, Clone)]
pub struct SpectralCoclustering {
    /// Cluster label per row of the input matrix.
    pub row_labels: Vec<usize>,
    /// Cluster label per column of the input matrix.
    pub col_labels: Vec<usize>,
    /// Number of clusters.
    pub k: usize,
}

impl SpectralCoclustering {
    /// Co-cluster `a` (entries must be non-negative; GOGGLES shifts cosine
    /// affinities into `[0, 1]` before calling) into `k` biclusters.
    pub fn fit(a: &Matrix<f64>, k: usize, seed: u64) -> Result<Self> {
        let n = a.rows();
        let m = a.cols();
        if n == 0 || m == 0 {
            return Err(ModelError::EmptyInput);
        }
        if k < 2 {
            return Err(ModelError::InvalidParameter("spectral needs k ≥ 2".into()));
        }
        if n < k {
            return Err(ModelError::TooFewSamples { samples: n, components: k });
        }
        if a.as_slice().iter().any(|&v| v < 0.0) {
            return Err(ModelError::InvalidParameter(
                "spectral co-clustering requires non-negative entries".into(),
            ));
        }
        // Degree vectors (ε-floored so empty rows/cols stay finite).
        let mut d1 = vec![0.0f64; n];
        for (i, row) in a.rows_iter().enumerate() {
            d1[i] = row.iter().sum::<f64>().max(1e-12);
        }
        let mut d2 = vec![0.0f64; m];
        for row in a.rows_iter() {
            for (j, &v) in row.iter().enumerate() {
                d2[j] += v;
            }
        }
        for v in &mut d2 {
            *v = v.max(1e-12);
        }
        let inv_sqrt_d1: Vec<f64> = d1.iter().map(|&v| 1.0 / v.sqrt()).collect();
        let inv_sqrt_d2: Vec<f64> = d2.iter().map(|&v| 1.0 / v.sqrt()).collect();
        // An = D1^-1/2 A D2^-1/2
        let mut an = a.clone();
        for i in 0..n {
            let ri = inv_sqrt_d1[i];
            for (j, v) in an.row_mut(i).iter_mut().enumerate() {
                *v *= ri * inv_sqrt_d2[j];
            }
        }
        // ℓ = ceil(log2 k) + 1 singular pairs (first is trivial).
        let l = (k as f64).log2().ceil() as usize + 1;
        let (u, v) = leading_singular_pairs(&an, l, seed)?;
        // Drop the first (trivial) pair; embed rows and columns.
        let dims = l - 1;
        let mut row_embed = Matrix::<f64>::zeros(n, dims);
        for i in 0..n {
            for t in 0..dims {
                row_embed[(i, t)] = inv_sqrt_d1[i] * u[(i, t + 1)];
            }
        }
        let mut col_embed = Matrix::<f64>::zeros(m, dims);
        for j in 0..m {
            for t in 0..dims {
                col_embed[(j, t)] = inv_sqrt_d2[j] * v[(j, t + 1)];
            }
        }
        // K-means on the stacked embedding (rows first, then columns).
        let stacked = row_embed.vstack(&col_embed).expect("equal dims");
        let km = KMeans::fit(&stacked, k, 5, seed)?;
        let row_labels = km.labels[..n].to_vec();
        let col_labels = km.labels[n..].to_vec();
        Ok(Self { row_labels, col_labels, k })
    }
}

/// Leading `l` singular pairs `(U, V)` of a rectangular matrix via the
/// eigendecomposition of the smaller Gram matrix.
fn leading_singular_pairs(
    an: &Matrix<f64>,
    l: usize,
    seed: u64,
) -> Result<(Matrix<f64>, Matrix<f64>)> {
    let n = an.rows();
    let m = an.cols();
    let l = l.min(n).min(m).max(1);
    let iters = 60;
    if m <= n {
        // eig of Anᵀ An (m × m) gives V; U = An V / σ.
        let gram = an.transpose().matmul(an);
        let eig = orthogonal_iteration(&gram, l, iters, seed)
            .map_err(|e| ModelError::Numerical(format!("orthogonal iteration: {e}")))?;
        let v = eig.vectors;
        let av = an.matmul(&v);
        let mut u = Matrix::<f64>::zeros(n, l);
        for t in 0..l {
            let sigma = eig.values[t].max(0.0).sqrt().max(1e-12);
            for i in 0..n {
                u[(i, t)] = av[(i, t)] / sigma;
            }
        }
        Ok((u, v))
    } else {
        // eig of An Anᵀ (n × n) gives U; V = Anᵀ U / σ.
        let gram = an.matmul(&an.transpose());
        let eig = orthogonal_iteration(&gram, l, iters, seed)
            .map_err(|e| ModelError::Numerical(format!("orthogonal iteration: {e}")))?;
        let u = eig.vectors;
        let atu = an.transpose().matmul(&u);
        let mut v = Matrix::<f64>::zeros(m, l);
        for t in 0..l {
            let sigma = eig.values[t].max(0.0).sqrt().max(1e-12);
            for j in 0..m {
                v[(j, t)] = atu[(j, t)] / sigma;
            }
        }
        Ok((u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::std_rng;
    use rand::Rng;

    /// Block-diagonal bipartite graph with noise: rows 0..n1 connect to
    /// cols 0..m1, the rest to the rest.
    fn block_matrix(n1: usize, n2: usize, m1: usize, m2: usize, seed: u64) -> Matrix<f64> {
        let mut rng = std_rng(seed);
        Matrix::from_fn(n1 + n2, m1 + m2, |i, j| {
            let in_block = (i < n1) == (j < m1);
            let base = if in_block { 0.8 } else { 0.05 };
            (base + 0.1 * rng.random::<f64>()).max(0.0)
        })
    }

    fn binary_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    #[test]
    fn recovers_block_structure_rows_and_cols() {
        let sc = SpectralCoclustering::fit(&block_matrix(20, 20, 30, 30, 1), 2, 0).unwrap();
        let row_truth: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let col_truth: Vec<usize> = (0..60).map(|j| usize::from(j >= 30)).collect();
        assert!(binary_accuracy(&sc.row_labels, &row_truth) > 0.95);
        assert!(binary_accuracy(&sc.col_labels, &col_truth) > 0.95);
    }

    #[test]
    fn works_when_rows_exceed_cols() {
        let sc = SpectralCoclustering::fit(&block_matrix(40, 40, 5, 5, 2), 2, 0).unwrap();
        let row_truth: Vec<usize> = (0..80).map(|i| usize::from(i >= 40)).collect();
        assert!(binary_accuracy(&sc.row_labels, &row_truth) > 0.9);
    }

    #[test]
    fn rejects_negative_entries() {
        let a = Matrix::from_rows(&[&[1.0, -0.1], &[0.3, 0.2]]);
        assert!(matches!(
            SpectralCoclustering::fit(&a, 2, 0),
            Err(ModelError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_k_less_than_two() {
        let a = Matrix::filled(4, 4, 1.0);
        assert!(SpectralCoclustering::fit(&a, 1, 0).is_err());
    }

    #[test]
    fn survives_empty_rows() {
        let mut a = block_matrix(10, 10, 10, 10, 3);
        for v in a.row_mut(0) {
            *v = 0.0;
        }
        let sc = SpectralCoclustering::fit(&a, 2, 0).unwrap();
        assert_eq!(sc.row_labels.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = block_matrix(15, 15, 20, 20, 4);
        let x = SpectralCoclustering::fit(&a, 2, 9).unwrap();
        let y = SpectralCoclustering::fit(&a, 2, 9).unwrap();
        assert_eq!(x.row_labels, y.row_labels);
    }
}

//! Fixture: per-iteration allocations inside a hot-path loop.

pub fn render(xs: &[u8]) -> String {
    let mut out = String::new();
    for &x in xs {
        let line = format!("item {x}");
        out.push_str(&line);
        let copy = xs.to_vec();
        let _ = copy.len();
    }
    out
}

//! Labeling functions and the vote matrix.
//!
//! A labeling function maps an instance to a class label or abstains — the
//! data-programming contract (Figure 1 of the paper shows two examples).
//! The [`LabelMatrix`] collects all votes; label models consume it.

use crate::{LabelModelError, Result};
use goggles_tensor::Matrix;

/// The abstain vote.
// goggles-lint: allow(dead-pub): the weak-supervision abstain sentinel, part of the LabelMatrix contract; external callers compare against the literal through the matrix API
pub const ABSTAIN: i64 = -1;

/// Dense matrix of LF votes: `n instances × m labeling functions`, entries
/// in `{ABSTAIN} ∪ {0..num_classes}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelMatrix {
    votes: Vec<i64>,
    n: usize,
    m: usize,
    num_classes: usize,
}

impl LabelMatrix {
    /// Build from row-major votes.
    pub fn new(n: usize, m: usize, num_classes: usize, votes: Vec<i64>) -> Result<Self> {
        if n == 0 || m == 0 {
            return Err(LabelModelError::EmptyInput);
        }
        if votes.len() != n * m {
            return Err(LabelModelError::InvalidInput(format!(
                "{} votes cannot fill {n}×{m}",
                votes.len()
            )));
        }
        if num_classes < 2 {
            return Err(LabelModelError::InvalidInput("need ≥ 2 classes".into()));
        }
        if let Some(&bad) =
            votes.iter().find(|&&v| v != ABSTAIN && (v < 0 || v >= num_classes as i64))
        {
            return Err(LabelModelError::InvalidInput(format!("invalid vote {bad}")));
        }
        Ok(Self { votes, n, m, num_classes })
    }

    /// Build by evaluating `lfs` (closures) on instance indices `0..n`.
    // goggles-lint: allow(dead-pub): LabelMatrix constructor from raw votes, pairing with the exported new; exercised only by unit tests
    pub fn from_lfs(
        n: usize,
        num_classes: usize,
        lfs: &[Box<dyn Fn(usize) -> i64>],
    ) -> Result<Self> {
        let m = lfs.len();
        let mut votes = Vec::with_capacity(n * m);
        for i in 0..n {
            for lf in lfs {
                votes.push(lf(i));
            }
        }
        Self::new(n, m, num_classes, votes)
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of labeling functions.
    pub(crate) fn num_lfs(&self) -> usize {
        self.m
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Vote of LF `j` on instance `i`.
    #[inline(always)]
    pub(crate) fn vote(&self, i: usize, j: usize) -> i64 {
        debug_assert!(i < self.n && j < self.m);
        self.votes[i * self.m + j]
    }

    /// Votes of instance `i` across all LFs.
    pub fn row(&self, i: usize) -> &[i64] {
        &self.votes[i * self.m..(i + 1) * self.m]
    }

    /// Fraction of instances on which LF `j` does not abstain.
    // goggles-lint: allow(dead-pub): Snorkel-style LF diagnostic the paper's baselines report; exercised only by unit tests
    pub fn coverage(&self, j: usize) -> f64 {
        let non_abstain = (0..self.n).filter(|&i| self.vote(i, j) != ABSTAIN).count();
        non_abstain as f64 / self.n as f64
    }

    /// Fraction of instances where at least one LF votes.
    pub fn total_coverage(&self) -> f64 {
        let covered = (0..self.n).filter(|&i| self.row(i).iter().any(|&v| v != ABSTAIN)).count();
        covered as f64 / self.n as f64
    }

    /// Fraction of instances where two non-abstaining LFs disagree.
    // goggles-lint: allow(dead-pub): Snorkel-style LF diagnostic the paper's baselines report; exercised only by unit tests
    pub fn conflict_rate(&self) -> f64 {
        let mut conflicts = 0usize;
        for i in 0..self.n {
            let row = self.row(i);
            let mut first: Option<i64> = None;
            let mut conflict = false;
            for &v in row {
                if v == ABSTAIN {
                    continue;
                }
                match first {
                    None => first = Some(v),
                    Some(f) if f != v => {
                        conflict = true;
                        break;
                    }
                    _ => {}
                }
            }
            if conflict {
                conflicts += 1;
            }
        }
        conflicts as f64 / self.n as f64
    }

    /// Empirical accuracy of LF `j` against ground truth, over its covered
    /// instances (None if it always abstains).
    // goggles-lint: allow(dead-pub): Snorkel-style LF diagnostic the paper's baselines report; exercised only by unit tests
    pub fn empirical_accuracy(&self, j: usize, truth: &[usize]) -> Option<f64> {
        assert_eq!(truth.len(), self.n);
        let mut correct = 0usize;
        let mut covered = 0usize;
        for i in 0..self.n {
            let v = self.vote(i, j);
            if v == ABSTAIN {
                continue;
            }
            covered += 1;
            if v == truth[i] as i64 {
                correct += 1;
            }
        }
        (covered > 0).then(|| correct as f64 / covered as f64)
    }

    /// Majority-vote probabilistic labels: per instance, the normalized
    /// vote histogram (uniform when all LFs abstain). The standard
    /// data-programming baseline aggregator.
    pub(crate) fn majority_vote(&self) -> Matrix<f64> {
        let k = self.num_classes;
        let mut out = Matrix::<f64>::zeros(self.n, k);
        for i in 0..self.n {
            let mut counts = vec![0.0f64; k];
            for &v in self.row(i) {
                if v != ABSTAIN {
                    counts[v as usize] += 1.0;
                }
            }
            let total: f64 = counts.iter().sum();
            let row = out.row_mut(i);
            if total == 0.0 {
                row.fill(1.0 / k as f64);
            } else {
                for (dst, c) in row.iter_mut().zip(counts) {
                    *dst = c / total;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 instances, 3 LFs, 2 classes.
    fn sample() -> LabelMatrix {
        LabelMatrix::new(
            4,
            3,
            2,
            vec![
                0, ABSTAIN, 0, //
                1, 1, ABSTAIN, //
                ABSTAIN, ABSTAIN, ABSTAIN, //
                0, 1, 1,
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(LabelMatrix::new(0, 1, 2, vec![]).is_err());
        assert!(LabelMatrix::new(1, 1, 2, vec![5]).is_err());
        assert!(LabelMatrix::new(1, 1, 2, vec![0, 1]).is_err());
        assert!(LabelMatrix::new(1, 1, 1, vec![0]).is_err());
        assert!(LabelMatrix::new(1, 2, 2, vec![ABSTAIN, 1]).is_ok());
    }

    #[test]
    fn coverage_and_conflicts() {
        let lm = sample();
        assert!((lm.coverage(0) - 0.75).abs() < 1e-12);
        assert!((lm.coverage(1) - 0.5).abs() < 1e-12);
        assert!((lm.total_coverage() - 0.75).abs() < 1e-12);
        // only instance 3 has disagreeing non-abstain votes
        assert!((lm.conflict_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empirical_accuracy_against_truth() {
        let lm = sample();
        let truth = vec![0, 1, 0, 1];
        assert_eq!(lm.empirical_accuracy(0, &truth), Some(2.0 / 3.0));
        assert_eq!(lm.empirical_accuracy(1, &truth), Some(1.0));
        // an always-abstaining LF
        let lm2 = LabelMatrix::new(2, 1, 2, vec![ABSTAIN, ABSTAIN]).unwrap();
        assert_eq!(lm2.empirical_accuracy(0, &[0, 1]), None);
    }

    #[test]
    fn majority_vote_normalizes_and_defaults_uniform() {
        let lm = sample();
        let mv = lm.majority_vote();
        assert_eq!(mv.row(0), &[1.0, 0.0]);
        assert_eq!(mv.row(1), &[0.0, 1.0]);
        assert_eq!(mv.row(2), &[0.5, 0.5]); // all abstain → uniform
        assert!((mv.row(3)[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_lfs_evaluates_closures() {
        let lfs: Vec<Box<dyn Fn(usize) -> i64>> =
            vec![Box::new(|i| if i % 2 == 0 { 0 } else { 1 }), Box::new(|_| ABSTAIN)];
        let lm = LabelMatrix::from_lfs(4, 2, &lfs).unwrap();
        assert_eq!(lm.vote(2, 0), 0);
        assert_eq!(lm.vote(1, 1), ABSTAIN);
        assert_eq!(lm.coverage(1), 0.0);
    }
}

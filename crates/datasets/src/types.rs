//! Dataset container types: task configuration, train/test split and the
//! small labeled development set the paper's class inference relies on
//! (§4.3, default 5 labels per class).

use goggles_tensor::rng::{sample_without_replacement, std_rng};
use goggles_vision::Image;

/// Which benchmark task to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// CUB-200-like binary species discrimination between two of the 200
    /// procedurally defined "species".
    Cub { class_a: usize, class_b: usize },
    /// GTSRB-like binary traffic-sign discrimination between two of the 43
    /// procedurally defined sign types.
    Gtsrb { class_a: usize, class_b: usize },
    /// Surface-finish inspection: good (smooth) vs bad (rough).
    Surface,
    /// Three-grade surface inspection: smooth / scratched / pitted.
    /// Not part of the paper's (binary) evaluation — included to exercise
    /// the K ≥ 3 path of the cluster→class assignment (§4.3's O(K³) solver
    /// has no closed form beyond K = 2) and the multinomial theory (§4.4).
    SurfaceGrades,
    /// Tuberculosis chest X-ray screening: normal vs abnormal.
    TbXray,
    /// Pneumonia chest X-ray screening: normal vs pneumonia.
    PnXray,
}

impl TaskKind {
    /// Paper-facing dataset name (Table 1 row label).
    pub fn dataset_name(&self) -> &'static str {
        match self {
            TaskKind::Cub { .. } => "CUB",
            TaskKind::Gtsrb { .. } => "GTSRB",
            TaskKind::Surface => "Surface",
            TaskKind::SurfaceGrades => "Surface-3",
            TaskKind::TbXray => "TB-Xray",
            TaskKind::PnXray => "PN-Xray",
        }
    }
}

/// Full specification of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskConfig {
    /// Which task family and classes.
    pub kind: TaskKind,
    /// Training images per class.
    pub n_train_per_class: usize,
    /// Held-out test images per class.
    pub n_test_per_class: usize,
    /// Square image side in pixels.
    pub image_size: usize,
    /// Master seed; all image content derives deterministically from it.
    pub seed: u64,
}

impl TaskConfig {
    /// Standard configuration at the reproduction's default 64×64 size.
    pub fn new(
        kind: TaskKind,
        n_train_per_class: usize,
        n_test_per_class: usize,
        seed: u64,
    ) -> Self {
        Self { kind, n_train_per_class, n_test_per_class, image_size: 64, seed }
    }
}

/// A generated dataset: images plus ground truth and the split layout.
///
/// Ground-truth labels are carried for *evaluation only*; the GOGGLES
/// pipeline reads labels solely through the [`DevSet`] it is handed.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name (e.g. `"CUB(3 vs 17)"`).
    pub name: String,
    /// Task family (Table 1 row).
    pub kind: TaskKind,
    /// All images, train block first then test block.
    pub images: Vec<Image>,
    /// Ground-truth class per image.
    pub labels: Vec<usize>,
    /// Number of classes (2 for every paper task).
    pub num_classes: usize,
    /// Indices of the training block.
    pub train_indices: Vec<usize>,
    /// Indices of the held-out test block.
    pub test_indices: Vec<usize>,
}

impl Dataset {
    /// Assemble a dataset from per-split image/label lists.
    pub fn from_parts(
        name: String,
        kind: TaskKind,
        num_classes: usize,
        train: Vec<(Image, usize)>,
        test: Vec<(Image, usize)>,
    ) -> Self {
        let mut images = Vec::with_capacity(train.len() + test.len());
        let mut labels = Vec::with_capacity(train.len() + test.len());
        for (img, l) in train {
            images.push(img);
            labels.push(l);
        }
        let n_train = images.len();
        for (img, l) in test {
            images.push(img);
            labels.push(l);
        }
        let train_indices = (0..n_train).collect();
        let test_indices = (n_train..images.len()).collect();
        Self { name, kind, images, labels, num_classes, train_indices, test_indices }
    }

    /// Borrow the training images (in index order).
    pub fn train_images(&self) -> Vec<&Image> {
        self.train_indices.iter().map(|&i| &self.images[i]).collect()
    }

    /// Borrow the test images (in index order).
    pub fn test_images(&self) -> Vec<&Image> {
        self.test_indices.iter().map(|&i| &self.images[i]).collect()
    }

    /// Ground-truth labels of the training block.
    pub fn train_labels(&self) -> Vec<usize> {
        self.train_indices.iter().map(|&i| self.labels[i]).collect()
    }

    /// Ground-truth labels of the test block.
    pub fn test_labels(&self) -> Vec<usize> {
        self.test_indices.iter().map(|&i| self.labels[i]).collect()
    }

    /// Sample a development set of `per_class` labeled examples per class
    /// from the training block ("5 label annotations arbitrarily chosen from
    /// each class" — §5.1.1). Deterministic given `seed`.
    ///
    /// # Panics
    /// Panics if a class has fewer than `per_class` training examples.
    pub fn sample_dev_set(&self, per_class: usize, seed: u64) -> DevSet {
        let mut rng = std_rng(seed ^ 0x000D_E5E7u64);
        let mut indices = Vec::with_capacity(per_class * self.num_classes);
        let mut labels = Vec::with_capacity(per_class * self.num_classes);
        for class in 0..self.num_classes {
            let members: Vec<usize> =
                self.train_indices.iter().copied().filter(|&i| self.labels[i] == class).collect();
            assert!(
                members.len() >= per_class,
                "class {class} has only {} training examples (< {per_class})",
                members.len()
            );
            let picks = sample_without_replacement(&mut rng, members.len(), per_class);
            for p in picks {
                indices.push(members[p]);
                labels.push(class);
            }
        }
        DevSet { indices, labels }
    }
}

/// The small labeled development set: global image indices plus their
/// ground-truth labels. This is the **only** supervision GOGGLES receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DevSet {
    /// Global indices into `Dataset::images`.
    pub indices: Vec<usize>,
    /// Ground-truth label of each dev index.
    pub labels: Vec<usize>,
}

impl DevSet {
    /// An empty development set (used for the size-0 point of Figure 8).
    pub fn empty() -> Self {
        Self { indices: Vec::new(), labels: Vec::new() }
    }

    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when no labels are available.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Restrict to the first `per_class` examples of each class (used by the
    /// Figure 8 dev-set-size sweep to nest the sets).
    pub fn truncated(&self, per_class: usize, num_classes: usize) -> DevSet {
        let mut counts = vec![0usize; num_classes];
        let mut indices = Vec::new();
        let mut labels = Vec::new();
        for (&i, &l) in self.indices.iter().zip(&self.labels) {
            if counts[l] < per_class {
                counts[l] += 1;
                indices.push(i);
                labels.push(l);
            }
        }
        DevSet { indices, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Dataset {
        let img = || Image::filled(1, 4, 4, 0.5);
        let train: Vec<(Image, usize)> = (0..10).map(|i| (img(), usize::from(i >= 5))).collect();
        let test: Vec<(Image, usize)> = (0..4).map(|i| (img(), usize::from(i >= 2))).collect();
        Dataset::from_parts("toy".into(), TaskKind::Surface, 2, train, test)
    }

    #[test]
    fn from_parts_layout() {
        let ds = tiny_dataset();
        assert_eq!(ds.images.len(), 14);
        assert_eq!(ds.train_indices.len(), 10);
        assert_eq!(ds.test_indices, (10..14).collect::<Vec<_>>());
        assert_eq!(ds.train_labels(), vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1]);
        assert_eq!(ds.test_labels(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn dev_set_is_balanced_and_from_train() {
        let ds = tiny_dataset();
        let dev = ds.sample_dev_set(3, 7);
        assert_eq!(dev.len(), 6);
        let zeros = dev.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(zeros, 3);
        for (&i, &l) in dev.indices.iter().zip(&dev.labels) {
            assert!(ds.train_indices.contains(&i));
            assert_eq!(ds.labels[i], l);
        }
        // distinct indices
        let mut sorted = dev.indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn dev_set_deterministic_per_seed() {
        let ds = tiny_dataset();
        assert_eq!(ds.sample_dev_set(2, 1), ds.sample_dev_set(2, 1));
        assert_ne!(ds.sample_dev_set(2, 1), ds.sample_dev_set(2, 2));
    }

    #[test]
    #[should_panic]
    fn dev_set_rejects_oversized_request() {
        let ds = tiny_dataset();
        let _ = ds.sample_dev_set(6, 0);
    }

    #[test]
    fn truncated_nests() {
        let ds = tiny_dataset();
        let dev4 = ds.sample_dev_set(4, 3);
        let dev2 = dev4.truncated(2, 2);
        assert_eq!(dev2.len(), 4);
        // prefix property per class
        for idx in &dev2.indices {
            assert!(dev4.indices.contains(idx));
        }
        let empty = dev4.truncated(0, 2);
        assert!(empty.is_empty());
    }
}

//! Affinity-kernel benchmark: single-row (m = 1) latency and batch build
//! throughput of the blocked fused matmul + column-max path versus the
//! pre-blocking scalar reference.
//!
//! ```text
//! GOGGLES_SCALE=quick|standard|paper cargo bench -p goggles-bench --bench affinity
//! ```
//!
//! Also drops `BENCH_affinity.json` in the results dir (see
//! `goggles::experiments::report::results_dir`).

use goggles::experiments::report::results_dir;
use goggles::experiments::{affinity_bench, Scale};
use goggles_bench::timed;

fn main() {
    let scale = Scale::from_env();
    let params = scale.params();
    println!("scale: {scale:?} → {params:?}\n");
    let report = timed("Affinity kernel", || affinity_bench::run(&params));
    println!("{}", report.to_table().render());
    let path = results_dir().join("BENCH_affinity.json");
    match report.write_json(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not write {}: {e}]\n", path.display()),
    }
    // Acceptance guardrails of the blocked kernel: it must agree with the
    // scalar reference within the 1e-5 tolerance everywhere, and with a
    // real thread budget (≥ 4) a single online request must be at least 2×
    // faster than the pre-blocking scalar path.
    assert!(
        report.max_abs_diff < 1e-5,
        "blocked kernel disagrees with the scalar reference: {:.3e}",
        report.max_abs_diff
    );
    // Best blocked configuration (the bench always grants a ≥ 4-thread
    // budget): on few physical cores, or tiny quick-scale rows, the
    // 1-thread kernel can beat sharding's fan-out overhead; on real
    // multicore hardware the sharded path wins. Either way the blocked
    // rewrite must clear the 2× bar over the pre-blocking scalar path.
    let best_ms = report.single_blocked_1t_ms.min(report.single_sharded_ms);
    let best_speedup = if best_ms > 0.0 { report.single_naive_ms / best_ms } else { 0.0 };
    assert!(
        best_speedup >= 2.0,
        "single-request speedup {best_speedup:.2}× below the 2× bar on {} threads",
        report.threads
    );
}

//! Minimal, dependency-free binary codec for snapshot persistence.
//!
//! Everything is little-endian and length-prefixed; floats are bit-exact
//! (`to_le_bytes`/`from_le_bytes`), so `save → load → save` is byte-for-byte
//! stable. A trailing FNV-1a checksum over the payload catches truncation
//! and bit rot at load time.

use crate::{ServeError, ServeResult};
use goggles_tensor::Matrix;

/// FNV-1a over a byte slice (the checksum used by the snapshot trailer).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Append-only byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed `usize` slice.
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Shape-prefixed `f64` matrix (row-major payload).
    pub fn put_matrix_f64(&mut self, m: &Matrix<f64>) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f64(v);
        }
    }

    /// Shape-prefixed `f32` matrix (row-major payload).
    pub fn put_matrix_f32(&mut self, m: &Matrix<f32>) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f32(v);
        }
    }
}

/// Cursor over a byte slice with checked reads.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> ServeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(ServeError::Snapshot(format!(
                "unexpected end of snapshot: wanted {n} bytes at offset {}, {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> ServeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> ServeResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ServeError::Snapshot(format!("invalid bool byte {v}"))),
        }
    }

    pub fn get_u32(&mut self) -> ServeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> ServeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_usize(&mut self) -> ServeResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| ServeError::Snapshot(format!("length {v} exceeds usize")))
    }

    /// A `usize` that is also sanity-bounded (corrupt snapshots must not
    /// trigger huge allocations).
    pub fn get_len(&mut self, max: usize) -> ServeResult<usize> {
        let v = self.get_usize()?;
        if v > max {
            return Err(ServeError::Snapshot(format!(
                "implausible length {v} (cap {max}) at offset {}",
                self.pos
            )));
        }
        Ok(v)
    }

    pub fn get_f64(&mut self) -> ServeResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_f32(&mut self) -> ServeResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_usize_slice(&mut self) -> ServeResult<Vec<usize>> {
        let n = self.get_len(self.remaining() / 8)?;
        (0..n).map(|_| self.get_usize()).collect()
    }

    pub fn get_f64_slice(&mut self) -> ServeResult<Vec<f64>> {
        let n = self.get_len(self.remaining() / 8)?;
        (0..n).map(|_| self.get_f64()).collect()
    }

    pub fn get_matrix_f64(&mut self) -> ServeResult<Matrix<f64>> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| ServeError::Snapshot(format!("matrix shape {rows}×{cols} overflows")))?;
        if len > self.remaining() / 8 {
            return Err(ServeError::Snapshot(format!(
                "matrix {rows}×{cols} larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.get_f64()?);
        }
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Snapshot(format!("matrix decode: {e}")))
    }

    pub fn get_matrix_f32(&mut self) -> ServeResult<Matrix<f32>> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| ServeError::Snapshot(format!("matrix shape {rows}×{cols} overflows")))?;
        if len > self.remaining() / 4 {
            return Err(ServeError::Snapshot(format!(
                "matrix {rows}×{cols} larger than remaining snapshot"
            )));
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(self.get_f32()?);
        }
        Matrix::from_vec(rows, cols, data)
            .map_err(|e| ServeError::Snapshot(format!("matrix decode: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_f32(3.5);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_f32().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_matrix_round_trip() {
        let mut w = Writer::new();
        w.put_usize_slice(&[1, 0, 99]);
        w.put_f64_slice(&[0.5, -2.0]);
        let m = Matrix::from_rows(&[&[1.0f64, 2.0], &[3.0, 4.0]]);
        w.put_matrix_f64(&m);
        let mf = Matrix::from_rows(&[&[0.5f32, -0.5]]);
        w.put_matrix_f32(&mf);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_usize_slice().unwrap(), vec![1, 0, 99]);
        assert_eq!(r.get_f64_slice().unwrap(), vec![0.5, -2.0]);
        assert_eq!(r.get_matrix_f64().unwrap(), m);
        assert_eq!(r.get_matrix_f32().unwrap(), mf);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_f64_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_f64_slice().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn implausible_lengths_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_usize_slice().is_err());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = fnv1a(b"goggles");
        assert_eq!(a, fnv1a(b"goggles"));
        assert_ne!(a, fnv1a(b"goggleS"));
    }
}

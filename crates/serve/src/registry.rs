//! Hot-swappable model lifecycle: the [`SnapshotRegistry`].
//!
//! A production labeler in the GOGGLES model is refit whenever the prototype
//! corpus or dev set grows, so the serving layer must swap in a new
//! [`FittedLabeler`] **under live traffic** — without dropping requests,
//! without blocking the workers, and with an escape hatch back to the
//! previous version. The registry owns the versioned `Arc<FittedLabeler>`s
//! and hands out cheap leases:
//!
//! * [`SnapshotRegistry::publish`] validates a labeler
//!   ([`FittedLabeler::validate`]) and atomically makes it the current
//!   version (monotonically numbered from 1).
//! * [`SnapshotRegistry::get`] resolves the *current* version as a
//!   [`PublishedSnapshot`] lease — an `Arc` clone under a short lock, never
//!   held across labeling. Callers that resolve once per batch get the
//!   swap-consistency guarantee: an in-flight batch finishes on the version
//!   it started with; the next batch picks up the swap.
//! * [`SnapshotRegistry::rollback`] re-points "current" at the previously
//!   published version (retired versions are kept, so rollback is O(1) and
//!   in-flight leases stay valid).
//! * Per-version serve counters ([`PublishedSnapshot::record_served`],
//!   surfaced by [`SnapshotRegistry::versions`]) make a canary or a drain
//!   observable: publish, then watch the old version's counter go quiet.

use crate::snapshot::FittedLabeler;
use crate::{ServeError, ServeResult};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A lease on one published snapshot version: the labeler, its version
/// number, and the shared serve counter. Cloning is two `Arc` bumps.
#[derive(Debug, Clone)]
pub struct PublishedSnapshot {
    version: u64,
    labeler: Arc<FittedLabeler>,
    served: Arc<AtomicU64>,
}

impl PublishedSnapshot {
    /// The monotonically increasing version number (first publish = 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The frozen labeler of this version.
    pub fn labeler(&self) -> &Arc<FittedLabeler> {
        &self.labeler
    }

    /// Record `n` requests served on this version (reflected in
    /// [`SnapshotRegistry::versions`]).
    pub fn record_served(&self, n: u64) {
        self.served.fetch_add(n, Ordering::Relaxed);
    }

    /// Requests served on this version so far.
    pub fn served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

/// Observability row for one registered version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionInfo {
    /// Version number.
    pub version: u64,
    /// Requests served on this version.
    pub served: u64,
    /// Whether this is the version [`SnapshotRegistry::get`] resolves.
    pub current: bool,
}

struct RegistryState {
    /// Every published version in publish order (never shrinks — retired
    /// versions stay resolvable for in-flight leases and for rollback).
    versions: Vec<PublishedSnapshot>,
    /// Index into `versions` of the currently served snapshot.
    current: usize,
}

/// Owner of the versioned labelers behind a running [`crate::LabelService`].
///
/// All operations take a short internal lock; none holds it across labeling
/// work, so `publish` under load never blocks traffic for longer than an
/// `Arc` clone.
pub struct SnapshotRegistry {
    state: Mutex<RegistryState>,
}

impl SnapshotRegistry {
    /// Start a registry with an initial labeler as version 1.
    ///
    /// The initial labeler is validated like any publish; a freshly fitted
    /// labeler always passes.
    pub fn new(initial: FittedLabeler) -> ServeResult<Self> {
        initial.validate()?;
        let state = RegistryState {
            versions: vec![PublishedSnapshot {
                version: 1,
                labeler: Arc::new(initial),
                served: Arc::new(AtomicU64::new(0)),
            }],
            current: 0,
        };
        Ok(Self { state: Mutex::new(state) })
    }

    /// Validate `labeler` and atomically make it the current version.
    /// Returns the new version number. Corrupt or inconsistent labelers are
    /// rejected with [`ServeError::Corrupt`] and the current version is
    /// left untouched.
    pub fn publish(&self, labeler: FittedLabeler) -> ServeResult<u64> {
        labeler.validate()?;
        let mut state = self.state.lock().expect("registry poisoned");
        let version = state.versions.last().expect("registry never empty").version + 1;
        state.versions.push(PublishedSnapshot {
            version,
            labeler: Arc::new(labeler),
            served: Arc::new(AtomicU64::new(0)),
        });
        state.current = state.versions.len() - 1;
        Ok(version)
    }

    /// Load, validate and publish a snapshot file — the hot-reload front
    /// used by [`crate::LabelService::reload_from`]. Accepts any
    /// [`crate::SnapshotFormat`].
    pub fn publish_file(&self, path: &std::path::Path) -> ServeResult<u64> {
        self.publish(FittedLabeler::load_from(path)?)
    }

    /// Re-point "current" at the version published immediately before the
    /// current one. Errors with [`ServeError::Registry`] when already at
    /// the oldest registered version.
    pub fn rollback(&self) -> ServeResult<u64> {
        let mut state = self.state.lock().expect("registry poisoned");
        if state.current == 0 {
            let v = state.versions[state.current].version;
            return Err(ServeError::Registry(format!(
                "cannot roll back: version {v} is the oldest registered snapshot"
            )));
        }
        state.current -= 1;
        Ok(state.versions[state.current].version)
    }

    /// Lease the current version: an `Arc` clone under a short lock.
    pub fn get(&self) -> PublishedSnapshot {
        let state = self.state.lock().expect("registry poisoned");
        state.versions[state.current].clone()
    }

    /// Lease a specific registered version (current or retired).
    pub fn get_version(&self, version: u64) -> ServeResult<PublishedSnapshot> {
        let state = self.state.lock().expect("registry poisoned");
        state
            .versions
            .iter()
            .find(|s| s.version == version)
            .cloned()
            .ok_or_else(|| ServeError::Registry(format!("version {version} is not registered")))
    }

    /// The current version number.
    pub fn current_version(&self) -> u64 {
        let state = self.state.lock().expect("registry poisoned");
        state.versions[state.current].version
    }

    /// Observability: every registered version with its serve counter, in
    /// publish order.
    pub fn versions(&self) -> Vec<VersionInfo> {
        let state = self.state.lock().expect("registry poisoned");
        state
            .versions
            .iter()
            .enumerate()
            .map(|(i, s)| VersionInfo {
                version: s.version,
                served: s.served(),
                current: i == state.current,
            })
            .collect()
    }
}

impl std::fmt::Debug for SnapshotRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotRegistry").field("versions", &self.versions()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_core::GogglesConfig;
    use goggles_datasets::{generate, Dataset, TaskConfig, TaskKind};

    fn fitted(seed: u64) -> (FittedLabeler, Dataset) {
        let mut cfg = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 4, seed);
        cfg.image_size = 32;
        let ds = generate(&cfg);
        let dev = ds.sample_dev_set(3, seed);
        let gcfg = GogglesConfig { seed, ..GogglesConfig::fast() };
        let (labeler, _) = FittedLabeler::fit(&gcfg, &ds, &dev).unwrap();
        (labeler, ds)
    }

    #[test]
    fn publish_rollback_and_counters() {
        let (a, _) = fitted(41);
        let b = FittedLabeler::load(&a.save_v2(true)).unwrap();
        let registry = SnapshotRegistry::new(a).unwrap();
        assert_eq!(registry.current_version(), 1);

        let lease1 = registry.get();
        assert_eq!(lease1.version(), 1);
        lease1.record_served(3);

        let v2 = registry.publish(b).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(registry.current_version(), 2);
        // the old lease stays valid and keeps counting against version 1
        lease1.record_served(2);
        let infos = registry.versions();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0], VersionInfo { version: 1, served: 5, current: false });
        assert_eq!(infos[1], VersionInfo { version: 2, served: 0, current: true });

        // rollback re-points current; retired version still leasable
        assert_eq!(registry.rollback().unwrap(), 1);
        assert_eq!(registry.current_version(), 1);
        assert!(matches!(registry.rollback(), Err(ServeError::Registry(_))));
        assert_eq!(registry.get_version(2).unwrap().version(), 2);
        assert!(registry.get_version(99).is_err());
    }

    #[test]
    fn publish_rejects_corrupt_labelers_and_keeps_current() {
        let (a, _) = fitted(42);
        let mut bad = a.clone();
        // not a permutation — must be rejected at publish time
        let registry = SnapshotRegistry::new(a).unwrap();
        {
            let bytes = {
                // corrupt through the public surface: a v1 snapshot with a
                // duplicated mapping entry re-checksummed would also do, but
                // the clone path is simpler and equivalent here.
                bad.set_mapping_for_tests(vec![0, 0]);
                bad.save()
            };
            assert!(FittedLabeler::load(&bytes).is_err());
        }
        assert!(matches!(registry.publish(bad), Err(ServeError::Corrupt(_))));
        assert_eq!(registry.current_version(), 1, "failed publish must not advance");
        assert_eq!(registry.versions().len(), 1);
    }

    #[test]
    fn get_is_consistent_under_concurrent_publish() {
        // Hammer get() while another thread publishes; every lease must be
        // a fully valid version, and the final current must be the last
        // publish.
        let (a, ds) = fitted(43);
        let img = ds.test_images()[0].clone();
        let b = FittedLabeler::load(&a.save_v2(false)).unwrap();
        let registry = Arc::new(SnapshotRegistry::new(a).unwrap());
        let publisher = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    let next = FittedLabeler::load(&b.save()).unwrap();
                    registry.publish(next).unwrap();
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let registry = Arc::clone(&registry);
                let img = img.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let lease = registry.get();
                        let (label, probs) = lease.labeler().label_one(&img);
                        assert!(label < probs.len());
                        lease.record_served(1);
                    }
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(registry.current_version(), 5);
        let total: u64 = registry.versions().iter().map(|v| v.served).sum();
        assert_eq!(total, 60);
    }
}

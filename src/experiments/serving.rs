//! Serving benchmark: single-image latency and micro-batched throughput of
//! the `goggles-serve` path versus a full batch (`label_dataset`) refit.
//!
//! Not a paper artifact — the paper's system is batch-only — but the
//! direct quantification of what the snapshot/fold-in subsystem buys: a
//! per-request cost that is O(image) instead of O(dataset).

use super::report::Table;
use super::RunParams;
use goggles_core::Goggles;
use goggles_datasets::{generate, Dataset, DevSet, TaskKind};
use goggles_serve::{FittedLabeler, LabelService, ServeConfig};
use goggles_vision::Image;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything one serving-benchmark run measured.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Training images the labeler was fit on.
    pub n_train: usize,
    /// Held-out images served.
    pub n_held_out: usize,
    /// Wall-clock seconds of the one-time fit.
    pub fit_seconds: f64,
    /// Size of the serialized snapshot in bytes.
    pub snapshot_bytes: usize,
    /// p50 of single-image `label_one` latency, milliseconds.
    pub single_p50_ms: f64,
    /// Mean single-image `label_one` latency, milliseconds.
    pub single_mean_ms: f64,
    /// Images/second through the micro-batching service under concurrent
    /// clients.
    pub service_throughput_ips: f64,
    /// Mean micro-batch size the service assembled.
    pub service_mean_batch: f64,
    /// Mean request latency through the service, milliseconds.
    pub service_mean_latency_ms: f64,
    /// Wall-clock seconds of a full transductive `label_dataset` refit over
    /// train + held-out (the only way the batch system can label new
    /// images).
    pub refit_seconds: f64,
    /// Served accuracy on the held-out images.
    pub served_accuracy: f64,
    /// Transductive batch-refit accuracy on the same images.
    pub batch_accuracy: f64,
}

impl ServingReport {
    /// Amortized per-image serving time vs one refit labeling the same
    /// held-out set (> 1 means serving is cheaper per image).
    pub fn speedup_vs_refit(&self) -> f64 {
        if self.service_throughput_ips <= 0.0 {
            return 0.0;
        }
        let serve_per_image = 1.0 / self.service_throughput_ips;
        let refit_per_image = self.refit_seconds / self.n_held_out.max(1) as f64;
        refit_per_image / serve_per_image
    }

    /// Text table for the bench harness.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new("Serving: snapshot inference vs batch refit", &["metric", "value"]);
        let mut row = |k: &str, v: String| t.push_row(vec![k.to_string(), v]);
        row("train images (N)", format!("{}", self.n_train));
        row("held-out images served", format!("{}", self.n_held_out));
        row("one-time fit", format!("{:.3} s", self.fit_seconds));
        row("snapshot size", format!("{:.1} KiB", self.snapshot_bytes as f64 / 1024.0));
        row("single-image p50 latency", format!("{:.2} ms", self.single_p50_ms));
        row("single-image mean latency", format!("{:.2} ms", self.single_mean_ms));
        row("service throughput", format!("{:.0} img/s", self.service_throughput_ips));
        row("service mean batch size", format!("{:.2}", self.service_mean_batch));
        row("service mean latency", format!("{:.2} ms", self.service_mean_latency_ms));
        row("batch refit (train+held-out)", format!("{:.3} s", self.refit_seconds));
        row("per-image speedup vs refit", format!("{:.1}×", self.speedup_vs_refit()));
        row("served accuracy", format!("{:.1}%", 100.0 * self.served_accuracy));
        row("batch-refit accuracy", format!("{:.1}%", 100.0 * self.batch_accuracy));
        t
    }

    /// Hand-rolled JSON summary (the `BENCH_serving.json` artifact).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"n_train\": {},\n  \"n_held_out\": {},\n  \"fit_seconds\": {:.6},\n  \
             \"snapshot_bytes\": {},\n  \"single_p50_ms\": {:.4},\n  \"single_mean_ms\": {:.4},\n  \
             \"service_throughput_ips\": {:.2},\n  \"service_mean_batch\": {:.3},\n  \
             \"service_mean_latency_ms\": {:.4},\n  \"refit_seconds\": {:.6},\n  \
             \"speedup_vs_refit\": {:.2},\n  \"served_accuracy\": {:.4},\n  \
             \"batch_accuracy\": {:.4}\n}}\n",
            self.n_train,
            self.n_held_out,
            self.fit_seconds,
            self.snapshot_bytes,
            self.single_p50_ms,
            self.single_mean_ms,
            self.service_throughput_ips,
            self.service_mean_batch,
            self.service_mean_latency_ms,
            self.refit_seconds,
            self.speedup_vs_refit(),
            self.served_accuracy,
            self.batch_accuracy,
        )
    }

    /// Write the JSON artifact.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Run the serving benchmark at the given scale parameters.
pub fn run(params: &RunParams) -> ServingReport {
    let seed = 7u64;
    let mut task = goggles_datasets::TaskConfig::new(
        TaskKind::Cub { class_a: 0, class_b: 1 },
        params.n_train_per_class,
        params.n_test_per_class.max(8),
        seed,
    );
    task.image_size = params.image_size;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(params.dev_per_class, seed);
    let config = params.goggles_config(seed);

    // one-time fit + freeze
    let t0 = Instant::now();
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).expect("fit failed");
    let fit_seconds = t0.elapsed().as_secs_f64();
    let snapshot_bytes = labeler.save().len();

    let held_out = ds.test_images();
    let truth = ds.test_labels();

    // single-image latency distribution (direct, no queueing) with the
    // per-request thread budget a default 2-worker service would grant —
    // the affinity row is sharded across it (intra-request parallelism).
    let embed_threads = ServeConfig::default().embed_threads;
    let mut singles: Vec<f64> = Vec::with_capacity(held_out.len());
    for img in &held_out {
        let t = Instant::now();
        let _ = labeler.label_one_sharded(img, embed_threads);
        singles.push(t.elapsed().as_secs_f64() * 1e3);
    }
    singles.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let single_p50_ms = singles[singles.len() / 2];
    let single_mean_ms = singles.iter().sum::<f64>() / singles.len() as f64;

    // micro-batched throughput with concurrent clients
    let served = labeler.label_batch(&held_out, 2);
    let served_accuracy = served.accuracy(&truth);
    let service = Arc::new(LabelService::spawn(
        labeler,
        ServeConfig {
            workers: 2,
            max_batch: 8,
            batch_timeout: Duration::from_millis(4),
            ..ServeConfig::default()
        },
    ));
    let t1 = Instant::now();
    let handles: Vec<_> = held_out
        .iter()
        .map(|img| {
            let service = Arc::clone(&service);
            let img = (*img).clone();
            std::thread::spawn(move || service.label(&img).expect("service closed"))
        })
        .collect();
    for h in handles {
        let _ = h.join().expect("client thread");
    }
    let service_seconds = t1.elapsed().as_secs_f64();
    let stats = service.stats();
    let service_throughput_ips = stats.requests as f64 / service_seconds;
    let service_mean_batch = stats.mean_batch_size();
    let service_mean_latency_ms = stats.mean_latency_us() / 1e3;

    // the batch system's only path to new labels: transductive refit
    let all: Vec<(Image, usize)> = ds
        .train_indices
        .iter()
        .chain(&ds.test_indices)
        .map(|&i| (ds.images[i].clone(), ds.labels[i]))
        .collect();
    let transductive = Dataset::from_parts(ds.name.clone(), ds.kind, ds.num_classes, all, vec![]);
    let dev_rows = DevSet {
        indices: dev
            .indices
            .iter()
            .map(|&g| {
                ds.train_indices.iter().position(|&t| t == g).expect("dev index in training block")
            })
            .collect(),
        labels: dev.labels.clone(),
    };
    let t2 = Instant::now();
    let batch_result =
        Goggles::new(config).label_dataset(&transductive, &dev_rows).expect("batch refit failed");
    let refit_seconds = t2.elapsed().as_secs_f64();
    let hard = batch_result.labels.hard_labels();
    let n_train = ds.train_indices.len();
    let batch_accuracy = (0..truth.len()).filter(|&i| hard[n_train + i] == truth[i]).count() as f64
        / truth.len().max(1) as f64;

    ServingReport {
        n_train,
        n_held_out: held_out.len(),
        fit_seconds,
        snapshot_bytes,
        single_p50_ms,
        single_mean_ms,
        service_throughput_ips,
        service_mean_batch,
        service_mean_latency_ms,
        refit_seconds,
        served_accuracy,
        batch_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_parseable_by_eye_and_balanced() {
        let report = ServingReport {
            n_train: 10,
            n_held_out: 5,
            fit_seconds: 0.5,
            snapshot_bytes: 1024,
            single_p50_ms: 1.5,
            single_mean_ms: 2.0,
            service_throughput_ips: 100.0,
            service_mean_batch: 3.5,
            service_mean_latency_ms: 4.0,
            refit_seconds: 1.0,
            served_accuracy: 0.96,
            batch_accuracy: 0.95,
        };
        let json = report.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "n_train",
            "single_p50_ms",
            "service_throughput_ips",
            "speedup_vs_refit",
            "served_accuracy",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        // refit labels 5 images in 1 s → 0.2 s/img; serving at 100 img/s →
        // 0.01 s/img → 20× speedup.
        assert!((report.speedup_vs_refit() - 20.0).abs() < 1e-9);
        let table = report.to_table();
        assert!(table.render().contains("img/s"));
    }
}

//! The path-scoped rule engine: loads a workspace's sources and manifests,
//! resolves `goggles-lint: allow(...)` escape hatches, skips test code, and
//! runs every rule.

use crate::lexer::{lex, Comment, Lexed, Token};
use crate::rules;
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One reported violation, formatted as `file:line: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule name, as used in `allow(<rule>)`.
    pub rule: &'static str,
    pub message: String,
    /// Call-chain witness for the flow rules (`lock-order`, `panic-reach`);
    /// empty for single-site findings. Rendered structurally in `--format
    /// json`, and already part of `message` in text output.
    pub chain: Vec<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parsed `// goggles-lint: allow(<rule>): <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    /// Line the annotation comment *ends* on.
    pub line: usize,
    /// Whole-file scope (`allow-file`) instead of line scope.
    pub file_scope: bool,
    /// No code shares the comment's line: the allow covers the *next* line.
    /// A trailing comment (code on the same line) covers only its own line.
    pub standalone: bool,
}

/// One lexed source file plus everything the rules need to scope and
/// suppress their findings.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (rule scoping keys off this).
    pub rel: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    allows: Vec<Allow>,
    /// `goggles-lint: allow(...)` annotations that are themselves malformed
    /// (missing reason, unknown rule) — reported as violations.
    bad_allows: Vec<Diagnostic>,
    /// Line ranges (inclusive) of `#[cfg(test)]` items; findings inside are
    /// dropped (test code may panic freely).
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and annotate one source file.
    pub fn new(rel: String, src: &str) -> SourceFile {
        let Lexed { tokens, comments } = lex(src);
        let (allows, bad_allows) = parse_allows(&rel, &comments, &tokens);
        let test_ranges = find_test_ranges(&tokens);
        SourceFile { rel, tokens, comments, allows, bad_allows, test_ranges }
    }

    /// Whether `line` is inside test-only code.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether a finding of `rule` at `line` is suppressed by an allow
    /// annotation: file-scoped, same-line, or on the directly preceding
    /// line.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && (a.file_scope || a.line == line || (a.standalone && a.line + 1 == line))
        })
    }

    /// Report a finding unless it is in test code or allow-annotated.
    pub fn report(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: usize,
        message: String,
    ) {
        self.report_chain(out, rule, line, message, Vec::new());
    }

    /// Report a finding carrying a call-chain witness.
    pub fn report_chain(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        line: usize,
        message: String,
        chain: Vec<String>,
    ) {
        if self.in_test_code(line) || self.is_allowed(rule, line) {
            return;
        }
        out.push(Diagnostic { file: self.rel.clone(), line, rule, message, chain });
    }
}

/// The loaded workspace view every rule runs over.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// Test/bench/example sources: never linted, but lexed (once, like
    /// everything else) as the reference corpus the `dead-pub` audit counts
    /// as external users of an API.
    pub ref_files: Vec<SourceFile>,
    /// `Cargo.toml` contents keyed by workspace-relative path.
    pub manifests: BTreeMap<String, String>,
}

/// Directory names never descended into: build output and the lint
/// fixtures themselves.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Test/bench/example code may panic freely and is never linted, but it is
/// collected as the `dead-pub` reference corpus.
const REF_DIRS: &[&str] = &["tests", "benches", "examples"];

/// Vendored shim crates mimic third-party APIs; only their manifests are
/// subject to the dependency gate — their code is not product code.
const MANIFEST_ONLY_DIRS: &[&str] = &["shims"];

impl Workspace {
    /// Load every non-test `.rs` file and every `Cargo.toml` under `root`.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut ref_files = Vec::new();
        let mut manifests = BTreeMap::new();
        walk(root, root, &mut files, &mut ref_files, &mut manifests, Mode::Product)?;
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        ref_files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace { root: root.to_path_buf(), files, ref_files, manifests })
    }

    /// The source file at a workspace-relative path, if loaded.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Run every rule; diagnostics come back sorted by file and line.
    pub fn lint(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &self.files {
            out.extend(file.bad_allows.iter().cloned());
        }
        rules::run_all(self, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Linted product code.
    Product,
    /// Reference corpus (tests/benches/examples): lexed, never linted.
    Reference,
    /// Shims: manifests only.
    ManifestOnly,
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<SourceFile>,
    ref_files: &mut Vec<SourceFile>,
    manifests: &mut BTreeMap<String, String>,
    mode: Mode,
) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            let mode = if MANIFEST_ONLY_DIRS.contains(&name.as_str()) {
                Mode::ManifestOnly
            } else if mode == Mode::Product && REF_DIRS.contains(&name.as_str()) {
                Mode::Reference
            } else {
                mode
            };
            walk(root, &path, files, ref_files, manifests, mode)?;
        } else if name == "Cargo.toml" {
            manifests.insert(rel_of(root, &path), std::fs::read_to_string(&path)?);
        } else if name.ends_with(".rs") && mode != Mode::ManifestOnly {
            let src = std::fs::read_to_string(&path)?;
            let file = SourceFile::new(rel_of(root, &path), &src);
            match mode {
                Mode::Reference => ref_files.push(file),
                _ => files.push(file),
            }
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extract `goggles-lint: allow(<rule>): <reason>` (and `allow-file`)
/// annotations from a file's comments. Malformed annotations — missing
/// reason, unknown rule — are violations themselves: a silent typo must not
/// silently disable a rule.
fn parse_allows(
    rel: &str,
    comments: &[Comment],
    tokens: &[Token],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let code_lines: std::collections::BTreeSet<usize> = tokens.iter().map(|t| t.line).collect();
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        // The directive must BE the comment, not be quoted mid-prose: strip
        // the comment leader (`//`, `///`, `//!`, `/*`, `/**`) and require
        // the marker at the front. Docs that merely mention the syntax are
        // not directives.
        let content = comment.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(directive) = content.strip_prefix("goggles-lint:") else { continue };
        let directive = directive.trim();
        let file_scope = directive.starts_with("allow-file(");
        let Some(open) = directive.find('(') else {
            bad.push(bad_allow(rel, comment.line, "expected `allow(<rule>): <reason>`"));
            continue;
        };
        if !directive.starts_with("allow(") && !file_scope {
            bad.push(bad_allow(
                rel,
                comment.line,
                "unknown directive (use `allow` or `allow-file`)",
            ));
            continue;
        }
        let Some(close) = directive.find(')') else {
            bad.push(bad_allow(rel, comment.line, "unclosed `allow(`"));
            continue;
        };
        let rule = directive[open + 1..close].trim().to_string();
        if !rules::RULE_NAMES.contains(&rule.as_str()) {
            bad.push(bad_allow(
                rel,
                comment.line,
                &format!("unknown rule `{rule}` (rules: {})", rules::RULE_NAMES.join(", ")),
            ));
            continue;
        }
        let reason = directive[close + 1..].trim_start_matches(':').trim();
        if reason.is_empty() {
            bad.push(bad_allow(
                rel,
                comment.line,
                &format!("allow({rule}) needs a reason: `allow({rule}): <why this is safe>`"),
            ));
            continue;
        }
        allows.push(Allow {
            rule,
            line: comment.end_line,
            file_scope,
            standalone: !code_lines.contains(&comment.end_line),
        });
    }
    (allows, bad)
}

fn bad_allow(rel: &str, line: usize, message: &str) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line,
        rule: "bad-allow",
        message: message.to_string(),
        chain: Vec::new(),
    }
}

/// Find the inclusive line ranges of `#[cfg(test)]` items (modules or
/// functions) by matching the attribute token shape and then brace-matching
/// the item body that follows.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_cfg_test_at(tokens, i) {
            let start_line = tokens[i].line;
            // Skip past this attribute (7 tokens: # [ cfg ( test ) ]) and
            // any further attributes, then find the item's opening brace.
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].is_punct('#') {
                j = skip_attr(tokens, j);
            }
            let mut depth = 0usize;
            let mut end_line = start_line;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(';') && depth == 0 {
                    end_line = t.line; // e.g. `#[cfg(test)] mod tests;`
                    break;
                }
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                end_line = t.line;
                j += 1;
            }
            ranges.push((start_line, end_line));
            i = j;
        }
        i += 1;
    }
    ranges
}

fn is_cfg_test_at(tokens: &[Token], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct('#')
        && tokens[i + 1].is_punct('[')
        && tokens[i + 2].ident() == Some("cfg")
        && tokens[i + 3].is_punct('(')
        && tokens[i + 4].ident() == Some("test")
        && tokens[i + 5].is_punct(')')
        && tokens[i + 6].is_punct(']')
}

/// Given `tokens[i] == '#'` starting an attribute, return the index just
/// past its closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < tokens.len() {
        if tokens[j].is_punct('[') {
            depth += 1;
        } else if tokens[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_ranged() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn allow_parses_and_scopes() {
        let src = "\
// goggles-lint: allow(panic): provably infallible, len checked above
x.unwrap();
y.unwrap(); // goggles-lint: allow(panic): same line
z.unwrap();
";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.is_allowed("panic", 2), "next-line scope");
        assert!(f.is_allowed("panic", 3), "same-line scope");
        assert!(!f.is_allowed("panic", 4));
        assert!(!f.is_allowed("index", 2), "other rules unaffected");
    }

    #[test]
    fn allow_file_covers_everything() {
        let src = "// goggles-lint: allow-file(index): kernel file\nfn f() {}\nfn g() {}\n";
        let f = SourceFile::new("a.rs".into(), src);
        assert!(f.is_allowed("index", 3));
    }

    #[test]
    fn malformed_allows_are_violations() {
        for bad in [
            "// goggles-lint: allow(panic)",           // no reason
            "// goggles-lint: allow(panic):   ",       // blank reason
            "// goggles-lint: allow(no-such-rule): x", // unknown rule
            "// goggles-lint: permit(panic): x",       // unknown directive
        ] {
            let f = SourceFile::new("a.rs".into(), &format!("{bad}\nx.unwrap();\n"));
            assert_eq!(f.bad_allows.len(), 1, "{bad}");
            assert!(!f.is_allowed("panic", 2), "{bad} must not suppress");
        }
    }
}

//! RAII stage timing and a bounded ring buffer of recent trace events.
//!
//! A [`Span`] measures wall-clock time from `enter` to drop and records the
//! elapsed microseconds into a [`Histogram`]; optionally it also pushes a
//! [`TraceEvent`] into a [`TraceRing`] so operators can inspect the most
//! recent requests stage-by-stage. Spans never touch the data plane: they
//! only read the clock and bump atomics, so enabling them cannot change
//! label output.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

use crate::metrics::Histogram;

/// One timed stage of one unit of work (batch or request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage name, e.g. `"embed"`.
    pub stage: &'static str,
    /// Microseconds since the owning [`TraceRing`] was created, at the
    /// moment the span closed.
    pub at_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Caller-defined tag (the serving stack uses batch size or request id).
    pub tag: u64,
}

/// Bounded ring of the most recent [`TraceEvent`]s. Capacity 0 disables
/// recording entirely (pushes become no-ops after one atomic-free check).
pub struct TraceRing {
    capacity: usize,
    epoch: Instant,
    inner: Mutex<VecDeque<TraceEvent>>,
}

impl TraceRing {
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            epoch: Instant::now(),
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    // goggles-lint: allow(dead-pub): ring-size introspection pairing with the exported TraceRing::new; exercised only by unit tests
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record a finished stage. Oldest events are evicted first.
    pub fn push(&self, stage: &'static str, dur_us: u64, tag: u64) {
        if self.capacity == 0 {
            return;
        }
        let at_us = self.epoch.elapsed().as_micros() as u64;
        let mut ring = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent { stage, at_us, dur_us, tag });
    }

    /// Copy of the buffered events, oldest first.
    pub fn recent(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).is_empty()
    }
}

/// RAII timer: started by [`Span::enter`], records into its histogram (and
/// optionally a trace ring) when dropped or explicitly closed.
pub struct Span<'a> {
    histogram: &'a Histogram,
    ring: Option<(&'a TraceRing, &'static str, u64)>,
    start: Instant,
    done: bool,
}

impl<'a> Span<'a> {
    /// Start timing a stage into `histogram`.
    pub fn enter(histogram: &'a Histogram) -> Span<'a> {
        Span { histogram, ring: None, start: Instant::now(), done: false }
    }

    /// Start timing a stage, also pushing a [`TraceEvent`] on close.
    // goggles-lint: allow(dead-pub): span constructor pairing with the exported enter; exercised only by unit tests
    pub fn enter_traced(
        histogram: &'a Histogram,
        ring: &'a TraceRing,
        stage: &'static str,
        tag: u64,
    ) -> Span<'a> {
        Span { histogram, ring: Some((ring, stage, tag)), start: Instant::now(), done: false }
    }

    /// Close the span now, returning the recorded duration in microseconds.
    pub fn exit(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let us = self.start.elapsed().as_micros() as u64;
        self.histogram.observe(us);
        if let Some((ring, stage, tag)) = self.ring {
            ring.push(stage, us, tag);
        }
        us
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_into_histogram_once() {
        let h = Histogram::detached();
        {
            let _span = Span::enter(&h);
        }
        let explicit = Span::enter(&h).exit();
        let snap = h.snapshot();
        assert_eq!(snap.total(), 2);
        assert!(snap.sum >= explicit);
    }

    #[test]
    fn traced_span_pushes_event() {
        let h = Histogram::detached();
        let ring = TraceRing::new(4);
        Span::enter_traced(&h, &ring, "embed", 9).exit();
        let events = ring.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, "embed");
        assert_eq!(events[0].tag, 9);
    }

    #[test]
    fn ring_evicts_oldest_and_disables_at_zero_capacity() {
        let ring = TraceRing::new(2);
        ring.push("a", 1, 0);
        ring.push("b", 2, 0);
        ring.push("c", 3, 0);
        let stages: Vec<_> = ring.recent().iter().map(|e| e.stage).collect();
        assert_eq!(stages, vec!["b", "c"]);

        let off = TraceRing::new(0);
        off.push("x", 1, 0);
        assert!(off.is_empty());
        assert!(!off.is_enabled());
    }
}

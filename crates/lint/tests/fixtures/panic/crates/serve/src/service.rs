//! Fixture: panic-family violations on a hot-path module.

pub fn first(xs: &[u8]) -> u8 {
    let v = xs.first().unwrap();
    if *v == 0 {
        panic!("zero byte");
    }
    *v
}

//! Fixture: the three lock-order findings — an ABBA inversion between
//! `queue` and `stats`, a re-entry deadlock through a call, and blocking
//! I/O while a guard is live.

use std::sync::{Mutex, PoisonError};

pub struct State {
    pub queue: Mutex<Vec<u8>>,
    pub stats: Mutex<u64>,
}

pub fn enqueue(s: &State, x: u8) {
    let mut queue = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let mut stats = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
    queue.push(x);
    *stats += 1;
}

pub fn snapshot(s: &State) -> (usize, u64) {
    let stats = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
    let queue = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    (queue.len(), *stats)
}

pub fn total(s: &State) -> u64 {
    let stats = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *stats + helper_total(s)
}

fn helper_total(s: &State) -> u64 {
    *s.stats.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn drain_to(s: &State, out: &mut impl std::io::Write) {
    let queue = s.queue.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = out.write_all(&queue);
}

//! Fixture: hash-container iteration in a fit crate.

use std::collections::HashMap;

pub fn sum_scores() -> f64 {
    let mut scores: HashMap<usize, f64> = HashMap::new();
    scores.insert(0, 1.0);
    let mut acc = 0.0;
    for (_, v) in scores.iter() {
        acc += v;
    }
    acc
}

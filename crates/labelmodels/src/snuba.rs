//! Snuba-style automatic LF synthesis (Varma & Ré, VLDB 2019).
//!
//! Snuba takes (i) per-instance primitives and (ii) a small labeled
//! development set, and *learns* a committee of weak labeling functions:
//!
//! 1. **Candidate generation** — decision stumps over every single
//!    primitive dimension (Snuba's default heuristic family), fit on the
//!    dev set;
//! 2. **Abstain calibration** — each stump only votes outside a margin
//!    `β` around its threshold, with `β` chosen from a grid to maximize the
//!    dev-set F1 (Snuba's `find_beta`);
//! 3. **Diverse selection** — iteratively commit the candidate with the
//!    best dev F1, down-weighted by its coverage overlap (Jaccard) with the
//!    already-committed committee;
//! 4. **Aggregation** — the committee's votes on all unlabeled instances go
//!    through the [`crate::snorkel::SnorkelModel`] generative model to
//!    produce probabilistic labels, as in the original system.
//!
//! With a 10-example dev set the stumps are inevitably noisy — which is the
//! behaviour the paper's Table 1 documents (Snuba near chance on image
//! tasks when primitives are automatically extracted).
//!
//! Like the original system, three heuristic families are supported
//! ([`HeuristicFamily`]): decision stumps on single primitives, logistic
//! regressors on primitive pairs, and k-nearest-neighbour heuristics on
//! primitive pairs (Varma & Ré §3.1). The default uses all three.

use crate::lf::{LabelMatrix, ABSTAIN};
use crate::snorkel::SnorkelModel;
use crate::{LabelModelError, Result};
use goggles_tensor::Matrix;

/// One synthesized stump heuristic.
#[derive(Debug, Clone, PartialEq)]
// goggles-lint: allow(dead-pub): variant payload of the pub Heuristic enum; reached through inference
pub struct Stump {
    /// Primitive dimension the stump thresholds.
    pub feature: usize,
    /// Decision threshold θ.
    pub threshold: f64,
    /// Class voted when `x > θ + β` ( `1 - class_above` voted below θ - β).
    pub class_above: usize,
    /// Abstain half-width β.
    pub beta: f64,
    /// Dev-set F1 achieved during synthesis.
    pub dev_f1: f64,
}

impl Stump {
    /// Vote on a primitive row.
    pub(crate) fn vote(&self, row: &[f64]) -> i64 {
        let x = row[self.feature];
        if x > self.threshold + self.beta {
            self.class_above as i64
        } else if x < self.threshold - self.beta {
            1 - self.class_above as i64
        } else {
            ABSTAIN
        }
    }
}

/// Which weak-heuristic families the synthesizer may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
// goggles-lint: allow(dead-pub): field type of the pub SnubaConfig; reached through inference
pub enum HeuristicFamily {
    /// Decision stumps on single primitives only.
    Stumps,
    /// Logistic regressors on primitive pairs only.
    Logistic,
    /// kNN voters on primitive pairs only.
    Knn,
    /// All three families compete in the selection loop (Snuba default).
    All,
}

/// A synthesized weak heuristic from any family.
#[derive(Debug, Clone, PartialEq)]
// goggles-lint: allow(dead-pub): return type of pub Snuba::committee; reached through inference
pub enum Heuristic {
    /// Threshold on one primitive.
    Stump(Stump),
    /// Logistic regressor over a primitive pair.
    Logistic(LogisticLf),
    /// k-nearest-neighbour vote over a primitive pair.
    Knn(KnnLf),
}

impl Heuristic {
    /// Vote on a primitive row.
    pub(crate) fn vote(&self, row: &[f64]) -> i64 {
        match self {
            Heuristic::Stump(s) => s.vote(row),
            Heuristic::Logistic(l) => l.vote(row),
            Heuristic::Knn(k) => k.vote(row),
        }
    }

    /// Dev-set macro F1 recorded during synthesis.
    pub fn dev_f1(&self) -> f64 {
        match self {
            Heuristic::Stump(s) => s.dev_f1,
            Heuristic::Logistic(l) => l.dev_f1,
            Heuristic::Knn(k) => k.dev_f1,
        }
    }
}

/// Logistic-regressor heuristic on a primitive pair, with a symmetric
/// abstain band around p = 0.5 (Snuba's confidence thresholding).
#[derive(Debug, Clone, PartialEq)]
// goggles-lint: allow(dead-pub): variant payload of the pub Heuristic enum; reached through inference
pub struct LogisticLf {
    /// The two primitive dimensions consumed.
    pub features: (usize, usize),
    /// `[w_a, w_b, bias]` of the fitted regressor.
    pub weights: [f64; 3],
    /// Abstain half-width on the probability scale.
    pub beta: f64,
    /// Dev-set F1 achieved during synthesis.
    pub dev_f1: f64,
}

impl LogisticLf {
    fn prob(&self, row: &[f64]) -> f64 {
        let z = self.weights[0] * row[self.features.0]
            + self.weights[1] * row[self.features.1]
            + self.weights[2];
        1.0 / (1.0 + (-z).exp())
    }

    /// Vote class 1 above `0.5 + β`, class 0 below `0.5 − β`, else abstain.
    pub(crate) fn vote(&self, row: &[f64]) -> i64 {
        let p = self.prob(row);
        if p > 0.5 + self.beta {
            1
        } else if p < 0.5 - self.beta {
            0
        } else {
            ABSTAIN
        }
    }
}

/// kNN heuristic on a primitive pair: majority vote of the `k` nearest dev
/// examples, abstaining on ties.
#[derive(Debug, Clone, PartialEq)]
// goggles-lint: allow(dead-pub): variant payload of the pub Heuristic enum; reached through inference
pub struct KnnLf {
    /// The two primitive dimensions consumed.
    pub features: (usize, usize),
    /// `(a, b, label)` support points from the dev set.
    pub support: Vec<(f64, f64, usize)>,
    /// Neighbourhood size (odd values avoid most ties).
    pub k: usize,
    /// Dev-set F1 achieved during synthesis.
    pub dev_f1: f64,
}

impl KnnLf {
    /// Majority vote of the k nearest support points; abstain on ties.
    pub(crate) fn vote(&self, row: &[f64]) -> i64 {
        let (a, b) = (row[self.features.0], row[self.features.1]);
        let mut dists: Vec<(f64, usize)> = self
            .support
            .iter()
            .map(|&(sa, sb, l)| ((sa - a).powi(2) + (sb - b).powi(2), l))
            .collect();
        dists.sort_by(|x, y| x.0.total_cmp(&y.0));
        let k = self.k.min(dists.len()).max(1);
        let ones = dists[..k].iter().filter(|&&(_, l)| l == 1).count();
        let zeros = k - ones;
        match ones.cmp(&zeros) {
            std::cmp::Ordering::Greater => 1,
            std::cmp::Ordering::Less => 0,
            std::cmp::Ordering::Equal => ABSTAIN,
        }
    }
}

/// Snuba configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnubaConfig {
    /// Maximum committee size.
    pub max_lfs: usize,
    /// Candidate β values per heuristic (fractions of the relevant range).
    pub beta_grid: usize,
    /// Synthesis stops when no remaining candidate reaches this dev F1.
    pub min_f1: f64,
    /// Heuristic families allowed to compete.
    pub family: HeuristicFamily,
}

impl Default for SnubaConfig {
    fn default() -> Self {
        Self { max_lfs: 10, beta_grid: 5, min_f1: 0.55, family: HeuristicFamily::All }
    }
}

/// The fitted Snuba system.
#[derive(Debug, Clone)]
pub struct Snuba {
    /// Committed heuristics in selection order.
    pub committee: Vec<Heuristic>,
    /// Vote matrix of the committee on all instances.
    pub votes: LabelMatrix,
    /// Aggregated probabilistic labels (`n × 2`).
    pub probs: Matrix<f64>,
    /// The generative aggregator.
    pub label_model: SnorkelModel,
}

impl Snuba {
    /// Synthesize labeling functions from `primitives` (`n × d`, all
    /// instances) using dev rows `dev_rows` with labels `dev_labels`
    /// (binary tasks, matching the paper's setup).
    pub fn fit(
        primitives: &Matrix<f64>,
        dev_rows: &[usize],
        dev_labels: &[usize],
        config: &SnubaConfig,
    ) -> Result<Self> {
        let n = primitives.rows();
        let d = primitives.cols();
        if n == 0 || d == 0 {
            return Err(LabelModelError::EmptyInput);
        }
        if dev_rows.len() != dev_labels.len() || dev_rows.is_empty() {
            return Err(LabelModelError::InvalidInput("dev set empty or ragged".into()));
        }
        if dev_labels.iter().any(|&l| l > 1) {
            return Err(LabelModelError::InvalidInput("Snuba reproduction is binary".into()));
        }

        // --- candidate generation per heuristic family ---
        let dev_feats: Vec<Vec<f64>> =
            dev_rows.iter().map(|&r| primitives.row(r).to_vec()).collect();
        let mut candidates: Vec<Heuristic> = Vec::new();
        let family = config.family;
        if matches!(family, HeuristicFamily::Stumps | HeuristicFamily::All) {
            for feature in 0..d {
                candidates.extend(
                    synthesize_stumps_for_feature(feature, &dev_feats, dev_labels, config)
                        .into_iter()
                        .map(Heuristic::Stump),
                );
            }
        }
        if matches!(family, HeuristicFamily::Logistic | HeuristicFamily::All) {
            for a in 0..d {
                for b in (a + 1)..d {
                    candidates.extend(
                        synthesize_logistic_for_pair((a, b), &dev_feats, dev_labels, config)
                            .into_iter()
                            .map(Heuristic::Logistic),
                    );
                }
            }
        }
        if matches!(family, HeuristicFamily::Knn | HeuristicFamily::All) {
            for a in 0..d {
                for b in (a + 1)..d {
                    if let Some(knn) = synthesize_knn_for_pair((a, b), &dev_feats, dev_labels) {
                        candidates.push(Heuristic::Knn(knn));
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(LabelModelError::InvalidInput(
                "no heuristic candidates could be synthesized".into(),
            ));
        }

        // --- diverse greedy selection ---
        let mut committee: Vec<Heuristic> = Vec::new();
        let mut committed_cov: Vec<bool> = vec![false; dev_rows.len()];
        while committee.len() < config.max_lfs {
            let mut best: Option<(f64, usize)> = None;
            for (ci, cand) in candidates.iter().enumerate() {
                if committee.iter().any(|c| c == cand) {
                    continue;
                }
                if cand.dev_f1() < config.min_f1 {
                    continue;
                }
                // Jaccard overlap with committee coverage on the dev set.
                let cov: Vec<bool> =
                    dev_feats.iter().map(|row| cand.vote(row) != ABSTAIN).collect();
                let inter =
                    cov.iter().zip(&committed_cov).filter(|(a, b)| **a && **b).count() as f64;
                let union =
                    cov.iter().zip(&committed_cov).filter(|(a, b)| **a || **b).count().max(1)
                        as f64;
                let diversity = 1.0 - inter / union;
                let score = cand.dev_f1() * (0.5 + 0.5 * diversity);
                if best.map(|(s, _)| score > s).unwrap_or(true) {
                    best = Some((score, ci));
                }
            }
            let Some((_, ci)) = best else { break };
            let chosen = candidates[ci].clone();
            for (flag, row) in committed_cov.iter_mut().zip(&dev_feats) {
                *flag = *flag || chosen.vote(row) != ABSTAIN;
            }
            committee.push(chosen);
        }
        if committee.is_empty() {
            // Fall back to the single best candidate so the system always
            // emits labels (Snuba's terminate-with-best behaviour).
            let best = candidates
                .into_iter()
                .max_by(|a, b| a.dev_f1().total_cmp(&b.dev_f1()))
                .expect("non-empty candidates");
            committee.push(best);
        }

        // --- vote on every instance and aggregate ---
        let m = committee.len();
        let mut votes = Vec::with_capacity(n * m);
        for i in 0..n {
            let row = primitives.row(i);
            for heuristic in &committee {
                votes.push(heuristic.vote(row));
            }
        }
        let votes = LabelMatrix::new(n, m, 2, votes)?;
        let label_model = SnorkelModel::fit(&votes, 100, 1e-6)?;
        let probs = label_model.probs.clone();
        Ok(Self { committee, votes, probs, label_model })
    }

    /// Hard labels by argmax.
    pub fn hard_labels(&self) -> Vec<usize> {
        (0..self.probs.rows()).map(|i| goggles_tensor::argmax(self.probs.row(i))).collect()
    }
}

/// Candidate stumps for one feature: thresholds at midpoints between sorted
/// dev values, both polarities, β from a grid — each scored by dev F1.
fn synthesize_stumps_for_feature(
    feature: usize,
    dev_feats: &[Vec<f64>],
    dev_labels: &[usize],
    config: &SnubaConfig,
) -> Vec<Stump> {
    let mut values: Vec<f64> = dev_feats.iter().map(|r| r[feature]).collect();
    values.sort_by(|a, b| a.total_cmp(b));
    values.dedup();
    if values.len() < 2 {
        return Vec::new();
    }
    let range = values[values.len() - 1] - values[0];
    let mut out = Vec::new();
    for w in values.windows(2) {
        let threshold = (w[0] + w[1]) / 2.0;
        for class_above in 0..2usize {
            for b in 0..config.beta_grid.max(1) {
                let beta = range * b as f64 / (4.0 * config.beta_grid.max(1) as f64);
                let stump = Stump { feature, threshold, class_above, beta, dev_f1: 0.0 };
                let f1 = macro_f1_on_dev(&stump, dev_feats, dev_labels);
                out.push(Stump { dev_f1: f1, ..stump });
            }
        }
    }
    // Keep only the best few per feature to bound the candidate pool.
    out.sort_by(|a, b| b.dev_f1.total_cmp(&a.dev_f1));
    out.truncate(4);
    out
}

/// Candidate logistic regressors for one primitive pair: a short
/// gradient-descent fit on the dev set, then a β grid over the abstain
/// band — each scored by dev F1.
fn synthesize_logistic_for_pair(
    features: (usize, usize),
    dev_feats: &[Vec<f64>],
    dev_labels: &[usize],
    config: &SnubaConfig,
) -> Vec<LogisticLf> {
    // Standardize the two coordinates over the dev set so a fixed learning
    // rate behaves across primitive scales.
    let coords: Vec<(f64, f64)> =
        dev_feats.iter().map(|r| (r[features.0], r[features.1])).collect();
    let n = coords.len() as f64;
    let (ma, mb) = coords.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x / n, b + y / n));
    let (va, vb) = coords
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + (x - ma).powi(2) / n, b + (y - mb).powi(2) / n));
    let (sa, sb) = (va.sqrt().max(1e-9), vb.sqrt().max(1e-9));
    // Plain-GD logistic fit in the standardized space.
    let mut w = [0.0f64; 3];
    for _ in 0..200 {
        let mut g = [0.0f64; 3];
        for (&(x, y), &l) in coords.iter().zip(dev_labels) {
            let (xs, ys) = ((x - ma) / sa, (y - mb) / sb);
            let z = w[0] * xs + w[1] * ys + w[2];
            let p = 1.0 / (1.0 + (-z).exp());
            let err = p - l as f64;
            g[0] += err * xs;
            g[1] += err * ys;
            g[2] += err;
        }
        for (wi, gi) in w.iter_mut().zip(g) {
            *wi -= 0.5 * gi / n;
        }
    }
    // Fold the standardization back into raw-space weights.
    let raw = [w[0] / sa, w[1] / sb, w[2] - w[0] * ma / sa - w[1] * mb / sb];
    let mut out = Vec::new();
    for b in 0..config.beta_grid.max(1) {
        let beta = 0.4 * b as f64 / config.beta_grid.max(1) as f64;
        let lf = LogisticLf { features, weights: raw, beta, dev_f1: 0.0 };
        let f1 = macro_f1_generic(|row| lf.vote(row), dev_feats, dev_labels);
        out.push(LogisticLf { dev_f1: f1, ..lf });
    }
    out.sort_by(|a, b| b.dev_f1.total_cmp(&a.dev_f1));
    out.truncate(2);
    out
}

/// kNN heuristic for one primitive pair, scored by leave-one-out dev F1.
fn synthesize_knn_for_pair(
    features: (usize, usize),
    dev_feats: &[Vec<f64>],
    dev_labels: &[usize],
) -> Option<KnnLf> {
    if dev_feats.len() < 4 {
        return None;
    }
    let support: Vec<(f64, f64, usize)> =
        dev_feats.iter().zip(dev_labels).map(|(r, &l)| (r[features.0], r[features.1], l)).collect();
    let k = 3usize;
    // Leave-one-out F1: score each dev point against the other support
    // points (otherwise every point trivially matches itself).
    let mut correct_votes = Vec::with_capacity(dev_feats.len());
    for i in 0..dev_feats.len() {
        let mut others = support.clone();
        others.swap_remove(i);
        let lf = KnnLf { features, support: others, k, dev_f1: 0.0 };
        correct_votes.push(lf.vote(&dev_feats[i]));
    }
    let f1 = {
        let mut f1_sum = 0.0;
        for class in 0..2usize {
            let mut tp = 0.0;
            let mut fp = 0.0;
            let mut fne = 0.0;
            for (&v, &truth) in correct_votes.iter().zip(dev_labels) {
                if v == class as i64 {
                    if truth == class {
                        tp += 1.0;
                    } else {
                        fp += 1.0;
                    }
                } else if truth == class {
                    fne += 1.0;
                }
            }
            let denom = 2.0 * tp + fp + fne;
            f1_sum += if denom > 0.0 { 2.0 * tp / denom } else { 0.0 };
        }
        f1_sum / 2.0
    };
    Some(KnnLf { features, support, k, dev_f1: f1 })
}

/// Macro F1 for an arbitrary vote closure (shared by the non-stump
/// families; the stump path keeps its specialized version).
fn macro_f1_generic(
    vote: impl Fn(&[f64]) -> i64,
    dev_feats: &[Vec<f64>],
    dev_labels: &[usize],
) -> f64 {
    let mut f1_sum = 0.0;
    for class in 0..2usize {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fne = 0.0;
        for (row, &truth) in dev_feats.iter().zip(dev_labels) {
            let v = vote(row);
            if v == class as i64 {
                if truth == class {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
            } else if truth == class {
                fne += 1.0;
            }
        }
        let denom = 2.0 * tp + fp + fne;
        f1_sum += if denom > 0.0 { 2.0 * tp / denom } else { 0.0 };
    }
    f1_sum / 2.0
}

/// Macro-averaged F1 of a stump's non-abstaining votes on the dev set.
/// Abstains count as missed recall (Snuba's weighted-F1 notion).
fn macro_f1_on_dev(stump: &Stump, dev_feats: &[Vec<f64>], dev_labels: &[usize]) -> f64 {
    let mut f1_sum = 0.0;
    for class in 0..2usize {
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut fne = 0.0;
        for (row, &truth) in dev_feats.iter().zip(dev_labels) {
            let v = stump.vote(row);
            if v == class as i64 {
                if truth == class {
                    tp += 1.0;
                } else {
                    fp += 1.0;
                }
            } else if truth == class {
                fne += 1.0;
            }
        }
        let denom = 2.0 * tp + fp + fne;
        f1_sum += if denom > 0.0 { 2.0 * tp / denom } else { 0.0 };
    }
    f1_sum / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    /// Primitives with one informative dimension and several noise dims.
    fn separable_primitives(
        n_per: usize,
        noise_dims: usize,
        gap: f64,
        seed: u64,
    ) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let n = 2 * n_per;
        let truth: Vec<usize> = (0..n).map(|i| usize::from(i >= n_per)).collect();
        let data = Matrix::from_fn(n, 1 + noise_dims, |i, j| {
            if j == 0 {
                let c = if truth[i] == 0 { -gap } else { gap };
                c + normal(&mut rng)
            } else {
                normal(&mut rng)
            }
        });
        (data, truth)
    }

    fn dev_of(truth: &[usize], per_class: usize) -> (Vec<usize>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            let mut count = 0;
            for (i, &t) in truth.iter().enumerate() {
                if t == class && count < per_class {
                    rows.push(i);
                    labels.push(class);
                    count += 1;
                }
            }
        }
        (rows, labels)
    }

    fn accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn learns_good_lfs_on_separable_primitives() {
        let (prim, truth) = separable_primitives(60, 4, 3.0, 1);
        let (rows, labels) = dev_of(&truth, 5);
        let snuba = Snuba::fit(&prim, &rows, &labels, &SnubaConfig::default()).unwrap();
        let acc = accuracy(&snuba.hard_labels(), &truth);
        assert!(acc > 0.9, "accuracy = {acc}");
        // At least one committed stump uses the informative feature.
        // At least one committed heuristic consumes the informative
        // dimension 0 (whatever its family).
        let uses_dim0 = snuba.committee.iter().any(|h| match h {
            Heuristic::Stump(s) => s.feature == 0,
            Heuristic::Logistic(l) => l.features.0 == 0 || l.features.1 == 0,
            Heuristic::Knn(k) => k.features.0 == 0 || k.features.1 == 0,
        });
        assert!(uses_dim0, "{:?}", snuba.committee);
    }

    #[test]
    fn near_chance_on_noise_primitives() {
        // No informative dimension at all — the regime of Table 1.
        let (prim, truth) = separable_primitives(60, 5, 0.0, 2);
        let (rows, labels) = dev_of(&truth, 5);
        let snuba = Snuba::fit(&prim, &rows, &labels, &SnubaConfig::default()).unwrap();
        let acc = accuracy(&snuba.hard_labels(), &truth);
        assert!((0.3..0.72).contains(&acc), "noise accuracy = {acc}");
    }

    #[test]
    fn committee_respects_max_size() {
        let (prim, truth) = separable_primitives(40, 8, 2.0, 3);
        let (rows, labels) = dev_of(&truth, 5);
        let cfg = SnubaConfig { max_lfs: 3, ..SnubaConfig::default() };
        let snuba = Snuba::fit(&prim, &rows, &labels, &cfg).unwrap();
        assert!(snuba.committee.len() <= 3);
        assert_eq!(snuba.votes.num_lfs(), snuba.committee.len());
    }

    #[test]
    fn stump_vote_respects_abstain_band() {
        let s = Stump { feature: 0, threshold: 0.0, class_above: 1, beta: 0.5, dev_f1: 1.0 };
        assert_eq!(s.vote(&[1.0]), 1);
        assert_eq!(s.vote(&[-1.0]), 0);
        assert_eq!(s.vote(&[0.2]), ABSTAIN);
        assert_eq!(s.vote(&[-0.4]), ABSTAIN);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (prim, _) = separable_primitives(10, 2, 1.0, 4);
        assert!(Snuba::fit(&prim, &[], &[], &SnubaConfig::default()).is_err());
        assert!(Snuba::fit(&prim, &[0], &[2], &SnubaConfig::default()).is_err());
        let empty = Matrix::<f64>::zeros(0, 3);
        assert!(Snuba::fit(&empty, &[0], &[0], &SnubaConfig::default()).is_err());
    }

    #[test]
    fn deterministic() {
        let (prim, truth) = separable_primitives(30, 3, 2.0, 5);
        let (rows, labels) = dev_of(&truth, 4);
        let a = Snuba::fit(&prim, &rows, &labels, &SnubaConfig::default()).unwrap();
        let b = Snuba::fit(&prim, &rows, &labels, &SnubaConfig::default()).unwrap();
        assert_eq!(a.hard_labels(), b.hard_labels());
        assert_eq!(a.committee, b.committee);
    }

    #[test]
    fn each_family_works_alone() {
        let (prim, truth) = separable_primitives(50, 3, 2.5, 11);
        let (rows, labels) = dev_of(&truth, 5);
        for family in [HeuristicFamily::Stumps, HeuristicFamily::Logistic, HeuristicFamily::Knn] {
            let cfg = SnubaConfig { family, ..SnubaConfig::default() };
            let snuba = Snuba::fit(&prim, &rows, &labels, &cfg).unwrap();
            let acc = accuracy(&snuba.hard_labels(), &truth);
            assert!(acc > 0.8, "{family:?} accuracy = {acc}");
            // the committee is family-pure
            for h in &snuba.committee {
                let ok = matches!(
                    (family, h),
                    (HeuristicFamily::Stumps, Heuristic::Stump(_))
                        | (HeuristicFamily::Logistic, Heuristic::Logistic(_))
                        | (HeuristicFamily::Knn, Heuristic::Knn(_))
                );
                assert!(ok, "{family:?} committed {h:?}");
            }
        }
    }

    #[test]
    fn logistic_lf_abstains_in_band() {
        let lf = LogisticLf { features: (0, 1), weights: [2.0, 0.0, 0.0], beta: 0.2, dev_f1: 1.0 };
        assert_eq!(lf.vote(&[3.0, 0.0]), 1); // p ≈ 1
        assert_eq!(lf.vote(&[-3.0, 0.0]), 0); // p ≈ 0
        assert_eq!(lf.vote(&[0.0, 0.0]), ABSTAIN); // p = 0.5
    }

    #[test]
    fn knn_lf_votes_by_neighbourhood() {
        let support = vec![
            (0.0, 0.0, 0usize),
            (0.1, 0.0, 0),
            (0.0, 0.1, 0),
            (5.0, 5.0, 1),
            (5.1, 5.0, 1),
            (5.0, 5.1, 1),
        ];
        let lf = KnnLf { features: (0, 1), support, k: 3, dev_f1: 1.0 };
        assert_eq!(lf.vote(&[0.05, 0.05]), 0);
        assert_eq!(lf.vote(&[5.05, 5.05]), 1);
        // equidistant midpoint with k=2 would tie; with k=3 the nearest
        // neighbours break it — use an even k to force the tie instead
        let tie = KnnLf {
            features: (0, 1),
            support: vec![(0.0, 0.0, 0), (1.0, 1.0, 1)],
            k: 2,
            dev_f1: 0.5,
        };
        assert_eq!(tie.vote(&[0.5, 0.5]), ABSTAIN);
    }

    #[test]
    fn more_dev_labels_do_not_hurt() {
        let (prim, truth) = separable_primitives(80, 4, 1.5, 6);
        let (rows5, labels5) = dev_of(&truth, 5);
        let (rows20, labels20) = dev_of(&truth, 20);
        let cfg = SnubaConfig::default();
        let small = Snuba::fit(&prim, &rows5, &labels5, &cfg).unwrap();
        let large = Snuba::fit(&prim, &rows20, &labels20, &cfg).unwrap();
        let acc_small = accuracy(&small.hard_labels(), &truth);
        let acc_large = accuracy(&large.hard_labels(), &truth);
        assert!(
            acc_large >= acc_small - 0.08,
            "acc20 {acc_large} much worse than acc5 {acc_small}"
        );
    }
}

//! Procedural drawing primitives used by the synthetic dataset generators.
//!
//! All shapes take floating-point centers/sizes so generators can jitter
//! positions continuously, and every routine clips against the image bounds
//! so callers may place evidence partially off-frame (as real photographs
//! do). Coordinates are `(y, x)` with `y` down.

use crate::image::Image;

/// Fill an axis-aligned rectangle `[y0, y1) × [x0, x1)` (clipped).
pub fn fill_rect(img: &mut Image, y0: i32, x0: i32, y1: i32, x1: i32, color: &[f32]) {
    let h = img.height() as i32;
    let w = img.width() as i32;
    let ys = y0.max(0)..y1.min(h);
    for y in ys {
        for x in x0.max(0)..x1.min(w) {
            img.set_pixel(y as usize, x as usize, color);
        }
    }
}

/// Fill a disc of radius `r` centered at `(cy, cx)`, with 1-pixel soft edge.
pub fn fill_disc(img: &mut Image, cy: f32, cx: f32, r: f32, color: &[f32]) {
    blend_disc(img, cy, cx, r, color, 1.0);
}

/// Alpha-blend a disc over the image (soft 1-pixel antialiased rim).
pub fn blend_disc(img: &mut Image, cy: f32, cx: f32, r: f32, color: &[f32], alpha: f32) {
    let h = img.height() as i32;
    let w = img.width() as i32;
    let y0 = ((cy - r).floor() as i32 - 1).max(0);
    let y1 = ((cy + r).ceil() as i32 + 1).min(h);
    let x0 = ((cx - r).floor() as i32 - 1).max(0);
    let x1 = ((cx + r).ceil() as i32 + 1).min(w);
    for y in y0..y1 {
        for x in x0..x1 {
            let dy = y as f32 - cy;
            let dx = x as f32 - cx;
            let d = (dy * dy + dx * dx).sqrt();
            // 1 inside, 0 outside, linear ramp across the last pixel.
            let cov = (r - d + 0.5).clamp(0.0, 1.0);
            if cov > 0.0 {
                img.blend_pixel(y as usize, x as usize, color, alpha * cov);
            }
        }
    }
}

/// Draw an annulus (ring) with inner radius `r_in` and outer radius `r_out`.
pub fn fill_ring(img: &mut Image, cy: f32, cx: f32, r_in: f32, r_out: f32, color: &[f32]) {
    assert!(r_out >= r_in, "fill_ring: r_out < r_in");
    let h = img.height() as i32;
    let w = img.width() as i32;
    let y0 = ((cy - r_out).floor() as i32 - 1).max(0);
    let y1 = ((cy + r_out).ceil() as i32 + 1).min(h);
    let x0 = ((cx - r_out).floor() as i32 - 1).max(0);
    let x1 = ((cx + r_out).ceil() as i32 + 1).min(w);
    for y in y0..y1 {
        for x in x0..x1 {
            let dy = y as f32 - cy;
            let dx = x as f32 - cx;
            let d = (dy * dy + dx * dx).sqrt();
            let cov_outer = (r_out - d + 0.5).clamp(0.0, 1.0);
            let cov_inner = (r_in - d + 0.5).clamp(0.0, 1.0);
            let cov = cov_outer - cov_inner;
            if cov > 0.0 {
                img.blend_pixel(y as usize, x as usize, color, cov);
            }
        }
    }
}

/// Fill an axis-aligned ellipse.
pub fn fill_ellipse(img: &mut Image, cy: f32, cx: f32, ry: f32, rx: f32, color: &[f32]) {
    blend_ellipse(img, cy, cx, ry, rx, color, 1.0);
}

/// Alpha-blend an axis-aligned ellipse with a soft rim.
pub(crate) fn blend_ellipse(
    img: &mut Image,
    cy: f32,
    cx: f32,
    ry: f32,
    rx: f32,
    color: &[f32],
    alpha: f32,
) {
    let h = img.height() as i32;
    let w = img.width() as i32;
    let y0 = ((cy - ry).floor() as i32 - 1).max(0);
    let y1 = ((cy + ry).ceil() as i32 + 1).min(h);
    let x0 = ((cx - rx).floor() as i32 - 1).max(0);
    let x1 = ((cx + rx).ceil() as i32 + 1).min(w);
    let ry = ry.max(0.5);
    let rx = rx.max(0.5);
    for y in y0..y1 {
        for x in x0..x1 {
            let ny = (y as f32 - cy) / ry;
            let nx = (x as f32 - cx) / rx;
            let d = (ny * ny + nx * nx).sqrt();
            // normalized distance; soften over ~1 pixel of the minor axis
            let soft = 1.0 / ry.min(rx);
            let cov = ((1.0 - d) / soft + 0.5).clamp(0.0, 1.0);
            if cov > 0.0 {
                img.blend_pixel(y as usize, x as usize, color, alpha * cov);
            }
        }
    }
}

/// Draw a line segment of the given thickness from `(y0, x0)` to `(y1, x1)`.
pub fn draw_line(
    img: &mut Image,
    y0: f32,
    x0: f32,
    y1: f32,
    x1: f32,
    thickness: f32,
    color: &[f32],
) {
    let len = ((y1 - y0).powi(2) + (x1 - x0).powi(2)).sqrt().max(1e-6);
    let steps = (len * 2.0).ceil() as usize + 1;
    let r = (thickness / 2.0).max(0.5);
    for s in 0..steps {
        let t = s as f32 / (steps - 1).max(1) as f32;
        let y = y0 + t * (y1 - y0);
        let x = x0 + t * (x1 - x0);
        blend_disc(img, y, x, r, color, 1.0);
    }
}

/// Fill a convex polygon given by vertices `(y, x)` using the even-odd rule
/// per scanline (works for any simple polygon).
pub fn fill_polygon(img: &mut Image, vertices: &[(f32, f32)], color: &[f32]) {
    if vertices.len() < 3 {
        return;
    }
    let h = img.height() as i32;
    let w = img.width() as i32;
    let min_y = vertices.iter().map(|v| v.0).fold(f32::INFINITY, f32::min).floor() as i32;
    let max_y = vertices.iter().map(|v| v.0).fold(f32::NEG_INFINITY, f32::max).ceil() as i32;
    for y in min_y.max(0)..(max_y + 1).min(h) {
        let fy = y as f32 + 0.5;
        // Collect x-crossings of the scanline with every edge.
        let mut xs: Vec<f32> = Vec::with_capacity(vertices.len());
        for i in 0..vertices.len() {
            let (ay, ax) = vertices[i];
            let (by, bx) = vertices[(i + 1) % vertices.len()];
            if (ay <= fy && by > fy) || (by <= fy && ay > fy) {
                let t = (fy - ay) / (by - ay);
                xs.push(ax + t * (bx - ax));
            }
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        for pair in xs.chunks_exact(2) {
            let x_start = pair[0].round().max(0.0) as i32;
            let x_end = pair[1].round().min(w as f32) as i32;
            for x in x_start..x_end {
                img.set_pixel(y as usize, x as usize, color);
            }
        }
    }
}

/// Fill a regular `sides`-gon with circumradius `r`, rotated by `rot` rad.
pub fn fill_regular_polygon(
    img: &mut Image,
    cy: f32,
    cx: f32,
    r: f32,
    sides: usize,
    rot: f32,
    color: &[f32],
) {
    assert!(sides >= 3, "need at least 3 sides");
    let verts: Vec<(f32, f32)> = (0..sides)
        .map(|i| {
            let a = rot + std::f32::consts::TAU * i as f32 / sides as f32;
            (cy + r * a.sin(), cx + r * a.cos())
        })
        .collect();
    fill_polygon(img, &verts, color);
}

/// Paint parallel stripes across the whole image at angle `theta`
/// (radians), alternating `color_a`/`color_b` with the given period
/// (pixels). Used for plumage/texture patterns.
pub fn fill_stripes(
    img: &mut Image,
    theta: f32,
    period: f32,
    duty: f32,
    color: &[f32],
    alpha: f32,
) {
    let (sin_t, cos_t) = theta.sin_cos();
    let period = period.max(1.0);
    let duty = duty.clamp(0.05, 0.95);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let proj = y as f32 * sin_t + x as f32 * cos_t;
            let phase = (proj / period).fract().abs();
            if phase < duty {
                img.blend_pixel(y, x, color, alpha);
            }
        }
    }
}

/// Paint stripes only inside a disc region (e.g. wing bars on a bird body).
#[allow(clippy::too_many_arguments)]
pub fn fill_stripes_in_disc(
    img: &mut Image,
    cy: f32,
    cx: f32,
    r: f32,
    theta: f32,
    period: f32,
    color: &[f32],
    alpha: f32,
) {
    let (sin_t, cos_t) = theta.sin_cos();
    let period = period.max(1.0);
    let h = img.height() as i32;
    let w = img.width() as i32;
    let y0 = ((cy - r).floor() as i32).max(0);
    let y1 = ((cy + r).ceil() as i32 + 1).min(h);
    let x0 = ((cx - r).floor() as i32).max(0);
    let x1 = ((cx + r).ceil() as i32 + 1).min(w);
    for y in y0..y1 {
        for x in x0..x1 {
            let dy = y as f32 - cy;
            let dx = x as f32 - cx;
            if dy * dy + dx * dx > r * r {
                continue;
            }
            let proj = dy * sin_t + dx * cos_t;
            if (proj / period).rem_euclid(1.0) < 0.5 {
                img.blend_pixel(y as usize, x as usize, color, alpha);
            }
        }
    }
}

/// Checkerboard fill over the whole image with the given cell size.
// goggles-lint: allow(dead-pub): documented drawing primitive; exercised only by this crate's unit tests
pub fn fill_checkerboard(img: &mut Image, cell: usize, color_a: &[f32], color_b: &[f32]) {
    let cell = cell.max(1);
    for y in 0..img.height() {
        for x in 0..img.width() {
            let parity = (y / cell + x / cell) % 2;
            img.set_pixel(y, x, if parity == 0 { color_a } else { color_b });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gray(img: &Image) -> f32 {
        img.mean()
    }

    #[test]
    fn fill_rect_clips_and_paints() {
        let mut img = Image::new(1, 8, 8);
        fill_rect(&mut img, -2, -2, 4, 4, &[1.0]);
        // only the 4x4 in-bounds region painted
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 3, 3), 1.0);
        assert_eq!(img.get(0, 4, 4), 0.0);
        assert!((gray(&img) - 16.0 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn disc_center_is_set_and_far_pixels_are_not() {
        let mut img = Image::new(1, 16, 16);
        fill_disc(&mut img, 8.0, 8.0, 3.0, &[1.0]);
        assert_eq!(img.get(0, 8, 8), 1.0);
        assert_eq!(img.get(0, 0, 0), 0.0);
        assert_eq!(img.get(0, 8, 14), 0.0);
    }

    #[test]
    fn disc_area_approximates_pi_r_squared() {
        let mut img = Image::new(1, 64, 64);
        fill_disc(&mut img, 32.0, 32.0, 10.0, &[1.0]);
        let area: f32 = img.tensor().channel(0).iter().sum();
        let expect = std::f32::consts::PI * 100.0;
        assert!((area - expect).abs() / expect < 0.05, "area = {area}, expect = {expect}");
    }

    #[test]
    fn ring_leaves_hole() {
        let mut img = Image::new(1, 32, 32);
        fill_ring(&mut img, 16.0, 16.0, 5.0, 9.0, &[1.0]);
        assert_eq!(img.get(0, 16, 16), 0.0); // center empty
        assert!(img.get(0, 16, 23) > 0.5); // on the band
        assert_eq!(img.get(0, 16, 29), 0.0); // outside
    }

    #[test]
    fn ellipse_respects_axes() {
        let mut img = Image::new(1, 32, 32);
        fill_ellipse(&mut img, 16.0, 16.0, 4.0, 10.0, &[1.0]);
        assert!(img.get(0, 16, 24) > 0.5); // along x within rx
        assert_eq!(img.get(0, 24, 16), 0.0); // along y beyond ry
    }

    #[test]
    fn line_connects_endpoints() {
        let mut img = Image::new(1, 16, 16);
        draw_line(&mut img, 2.0, 2.0, 13.0, 13.0, 1.0, &[1.0]);
        assert!(img.get(0, 2, 2) > 0.0);
        assert!(img.get(0, 13, 13) > 0.0);
        assert!(img.get(0, 8, 8) > 0.0); // midpoint
        assert_eq!(img.get(0, 2, 13), 0.0); // off-diagonal corner untouched
    }

    #[test]
    fn triangle_fill_covers_centroid_not_outside() {
        let mut img = Image::new(1, 32, 32);
        fill_polygon(&mut img, &[(4.0, 4.0), (4.0, 28.0), (28.0, 16.0)], &[1.0]);
        assert_eq!(img.get(0, 12, 16), 1.0); // inside
        assert_eq!(img.get(0, 27, 4), 0.0); // outside
    }

    #[test]
    fn polygon_with_fewer_than_three_vertices_is_noop() {
        let mut img = Image::new(1, 8, 8);
        fill_polygon(&mut img, &[(1.0, 1.0), (5.0, 5.0)], &[1.0]);
        assert_eq!(gray(&img), 0.0);
    }

    #[test]
    fn regular_polygon_octagon_symmetric() {
        let mut img = Image::new(1, 33, 33);
        fill_regular_polygon(&mut img, 16.0, 16.0, 12.0, 8, 0.0, &[1.0]);
        assert_eq!(img.get(0, 16, 16), 1.0);
        // Rough 4-fold symmetry of coverage.
        let area: f32 = img.tensor().channel(0).iter().sum();
        assert!(area > 250.0 && area < 450.0, "octagon area = {area}");
    }

    #[test]
    fn stripes_alternate() {
        let mut img = Image::new(1, 16, 16);
        fill_stripes(&mut img, 0.0, 8.0, 0.5, &[1.0], 1.0);
        // vertical stripes of width 4 (duty 0.5 of period 8)
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 0, 5), 0.0);
        assert_eq!(img.get(0, 0, 8), 1.0);
    }

    #[test]
    fn stripes_in_disc_stay_in_disc() {
        let mut img = Image::new(1, 32, 32);
        fill_stripes_in_disc(&mut img, 16.0, 16.0, 6.0, 0.3, 3.0, &[1.0], 1.0);
        assert_eq!(img.get(0, 2, 2), 0.0);
        let painted: f32 = img.tensor().channel(0).iter().sum();
        assert!(painted > 0.0);
    }

    #[test]
    fn checkerboard_parity() {
        let mut img = Image::new(1, 8, 8);
        fill_checkerboard(&mut img, 2, &[1.0], &[0.0]);
        assert_eq!(img.get(0, 0, 0), 1.0);
        assert_eq!(img.get(0, 0, 2), 0.0);
        assert_eq!(img.get(0, 2, 2), 1.0);
    }
}

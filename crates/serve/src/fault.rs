//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] names **failpoint sites** on the serving path and attaches
//! a fault kind plus a firing schedule to each. The plan is seeded from the
//! vendored RNG, so a chaos run is reproducible: the same spec string
//! produces the same fault sequence (per site) on every run. When no plan is
//! installed every failpoint is a single relaxed atomic load — the framework
//! costs nothing on the happy path and is never enabled implicitly; only
//! [`install`] (via `ServeConfig::fault_plan` or `goggles-served
//! --fault-plan`) turns it on.
//!
//! ## Sites
//!
//! Sites are free-form dotted strings; the ones wired into the stack are:
//!
//! | site | where it fires |
//! |---|---|
//! | `wire.read` | byte reads in the frame decoder (client + server) |
//! | `wire.write` | frame writes (client + server) |
//! | `snapshot.write` | [`crate::FittedLabeler::save_to`] persistence |
//! | `snapshot.read` | snapshot file loads |
//! | `worker.batch` | a service worker, between taking and running a batch |
//!
//! ## Plan grammar
//!
//! Entries are `;`-separated. `seed=<u64>` sets the plan seed; every other
//! entry is `<site>:<kind>@<schedule>`:
//!
//! ```text
//! seed=42;wire.read:flaky@p0.05;snapshot.write:torn@#1;worker.batch:panic@#3
//! ```
//!
//! Kinds: `io` (hard I/O error), `flaky` (transient `Interrupted`/
//! `WouldBlock`), `torn` (partial write persisted, then an error), `panic`
//! (worker-watchdog fodder), `delay:<ms>` (sleep, then proceed).
//!
//! Schedules: `p<f64>` (per-hit probability, seeded), `#<n>` (exactly the
//! `n`th hit of that site, once), `%<n>` (every `n`th hit).

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a triggered failpoint does to its call site.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FaultKind {
    /// Hard I/O error (`ErrorKind::Other`) — the operation fails outright.
    Io,
    /// Transient I/O error (`Interrupted` or `WouldBlock`, alternating) —
    /// a correct read loop retries these instead of killing the connection.
    Flaky,
    /// Partial write: the site persists a truncated artifact and then
    /// reports an error, simulating a crash mid-write.
    Torn,
    /// Panic at the site. Only honored by [`maybe_panic`] failpoints (the
    /// worker watchdog's test harness); I/O failpoints ignore it.
    Panic,
    /// Sleep for the given milliseconds, then proceed normally.
    Delay(u64),
}

/// When a rule fires, relative to the per-rule hit counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Schedule {
    /// Fire with this probability on each hit (seeded, reproducible).
    Prob(f64),
    /// Fire on exactly the `n`th hit (1-based), once.
    Nth(u64),
    /// Fire on every `n`th hit.
    Every(u64),
}

/// One failpoint rule: a site, a fault kind, and a firing schedule.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SiteRule {
    /// Failpoint site name (e.g. `wire.read`).
    pub site: String,
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// When the rule fires.
    pub schedule: Schedule,
}

/// A parsed, seeded fault plan. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for per-rule RNGs (probability schedules).
    pub seed: u64,
    /// The failpoint rules, in spec order.
    pub(crate) rules: Vec<SiteRule>,
}

impl FaultPlan {
    /// Parse a plan spec string (see the [module docs](self) for the
    /// grammar). Errors name the offending entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed =
                    seed.trim().parse().map_err(|_| format!("fault plan: bad seed {seed:?}"))?;
                continue;
            }
            let (site, rest) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault plan: entry {entry:?} missing ':' separator"))?;
            let (kind_s, sched_s) = rest
                .rsplit_once('@')
                .ok_or_else(|| format!("fault plan: entry {entry:?} missing '@<schedule>'"))?;
            let kind = match kind_s {
                "io" => FaultKind::Io,
                "flaky" => FaultKind::Flaky,
                "torn" => FaultKind::Torn,
                "panic" => FaultKind::Panic,
                other => match other.strip_prefix("delay:") {
                    Some(ms) => FaultKind::Delay(
                        ms.parse().map_err(|_| format!("fault plan: bad delay {ms:?}"))?,
                    ),
                    None => return Err(format!("fault plan: unknown fault kind {other:?}")),
                },
            };
            let schedule = if let Some(p) = sched_s.strip_prefix('p') {
                let p: f64 = p.parse().map_err(|_| format!("fault plan: bad probability {p:?}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault plan: probability {p} outside [0, 1]"));
                }
                Schedule::Prob(p)
            } else if let Some(n) = sched_s.strip_prefix('#') {
                Schedule::Nth(n.parse().map_err(|_| format!("fault plan: bad hit index {n:?}"))?)
            } else if let Some(n) = sched_s.strip_prefix('%') {
                let n: u64 = n.parse().map_err(|_| format!("fault plan: bad period {n:?}"))?;
                if n == 0 {
                    return Err("fault plan: period must be >= 1".to_string());
                }
                Schedule::Every(n)
            } else {
                return Err(format!("fault plan: unknown schedule {sched_s:?}"));
            };
            plan.rules.push(SiteRule { site: site.trim().to_string(), kind, schedule });
        }
        Ok(plan)
    }
}

/// FNV-1a, used to fold a site name into the per-rule RNG seed so distinct
/// sites draw independent (but reproducible) probability sequences.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct ActiveRule {
    site: String,
    kind: FaultKind,
    schedule: Schedule,
    hits: u64,
    rng: StdRng,
}

/// Fast-path gate: `false` means every failpoint returns immediately.
/// Relaxed is enough — installation happens-before use via the injector
/// mutex; the flag only short-circuits the lock on the happy path.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn injector() -> &'static Mutex<Option<Vec<ActiveRule>>> {
    static INJECTOR: OnceLock<Mutex<Option<Vec<ActiveRule>>>> = OnceLock::new();
    INJECTOR.get_or_init(|| Mutex::new(None))
}

/// Install a fault plan process-wide, replacing any previous one. Hit
/// counters and RNG streams start fresh.
pub fn install(plan: &FaultPlan) {
    let rules = plan
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| ActiveRule {
            site: r.site.clone(),
            kind: r.kind.clone(),
            schedule: r.schedule,
            hits: 0,
            rng: StdRng::seed_from_u64(plan.seed ^ fnv1a(r.site.as_bytes()) ^ ((i as u64) << 32)),
        })
        .collect();
    let mut guard = injector().lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(rules);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the installed plan; all failpoints become no-ops again.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut guard = injector().lock().unwrap_or_else(|p| p.into_inner());
    *guard = None;
}

/// Whether a plan is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Advance the site's rules by one hit and return the first fault that
/// fires, if any. `Delay` is returned like any other kind; callers sleep
/// outside the injector lock.
fn fire(site: &str) -> Option<FaultKind> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = injector().lock().unwrap_or_else(|p| p.into_inner());
    let rules = guard.as_mut()?;
    for rule in rules.iter_mut() {
        if rule.site != site {
            continue;
        }
        rule.hits += 1;
        let triggered = match rule.schedule {
            Schedule::Prob(p) => rule.rng.random_bool(p),
            Schedule::Nth(n) => rule.hits == n,
            Schedule::Every(n) => rule.hits % n == 0,
        };
        if triggered {
            return Some(rule.kind.clone());
        }
    }
    None
}

fn injected(site: &str, transient: bool) -> io::Error {
    if transient {
        // Alternate the two transient kinds so retry loops see both.
        static FLIP: AtomicU64 = AtomicU64::new(0);
        let kind = if FLIP.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
            io::ErrorKind::Interrupted
        } else {
            io::ErrorKind::WouldBlock
        };
        io::Error::new(kind, format!("injected transient fault at {site}"))
    } else {
        io::Error::other(format!("injected fault at {site}"))
    }
}

/// I/O failpoint: returns the injected error for this hit, if any.
/// `delay` sleeps and proceeds; `panic` rules are ignored here (a panic
/// on an I/O path would kill a connection thread, not a worker).
pub(crate) fn inject_io(site: &str) -> Option<io::Error> {
    match fire(site)? {
        FaultKind::Io | FaultKind::Torn => Some(injected(site, false)),
        FaultKind::Flaky => Some(injected(site, true)),
        FaultKind::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        FaultKind::Panic => None,
    }
}

/// Control-plane failpoint for out-of-crate consumers — the background
/// trainer's gate/canary sites (`trainer.gate`, `trainer.canary`). Same
/// semantics as the internal I/O failpoint: `io`/`flaky`/`torn` rules
/// return an injected error, `delay` sleeps and proceeds.
pub fn inject_control(site: &str) -> Option<io::Error> {
    inject_io(site)
}

/// Outcome of a [`inject_write`] failpoint.
#[derive(Debug)]
pub(crate) enum WriteFault {
    /// Fail the write with this error; nothing is persisted.
    Err(io::Error),
    /// Persist a truncated artifact, then report failure (simulated crash
    /// mid-write).
    Torn,
}

/// Write-path failpoint (snapshot persistence): distinguishes torn writes
/// from clean failures so the site can leave a genuinely corrupt artifact.
pub(crate) fn inject_write(site: &str) -> Option<WriteFault> {
    match fire(site)? {
        FaultKind::Io => Some(WriteFault::Err(injected(site, false))),
        FaultKind::Flaky => Some(WriteFault::Err(injected(site, true))),
        FaultKind::Torn => Some(WriteFault::Torn),
        FaultKind::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        FaultKind::Panic => None,
    }
}

/// Panic failpoint (worker watchdog): panics if a `panic` rule fires,
/// sleeps on `delay`, ignores I/O kinds.
pub(crate) fn maybe_panic(site: &str) {
    match fire(site) {
        Some(FaultKind::Panic) => {
            // goggles-lint: allow(panic): this IS the failpoint — the intentional panic that exercises the worker watchdog, reachable only with an installed fault plan
            panic!("injected panic at {site}");
        }
        Some(FaultKind::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The injector is process-global; tests that install/clear plans must
    /// not interleave. (Plans here only name `t.*` sites so concurrently
    /// running service tests never match a rule.)
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42; wire.read:flaky@p0.05; snapshot.write:torn@#1; \
             worker.batch:panic@#3; wire.write:delay:7@%4",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].site, "wire.read");
        assert_eq!(plan.rules[0].kind, FaultKind::Flaky);
        assert_eq!(plan.rules[0].schedule, Schedule::Prob(0.05));
        assert_eq!(plan.rules[1].kind, FaultKind::Torn);
        assert_eq!(plan.rules[1].schedule, Schedule::Nth(1));
        assert_eq!(plan.rules[2].kind, FaultKind::Panic);
        assert_eq!(plan.rules[3].kind, FaultKind::Delay(7));
        assert_eq!(plan.rules[3].schedule, Schedule::Every(4));
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "wire.read",               // no kind
            "wire.read:zap@p0.5",      // unknown kind
            "wire.read:io@q3",         // unknown schedule
            "wire.read:io@p1.5",       // probability out of range
            "wire.read:io@%0",         // zero period
            "seed=notanumber",         // bad seed
            "wire.read:delay:xx@p0.1", // bad delay
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn nth_schedule_fires_exactly_once_and_prob_is_reproducible() {
        let _guard = serial();
        let plan = FaultPlan::parse("seed=7;t.site:io@#2;t.prob:io@p0.3").unwrap();
        install(&plan);
        assert!(inject_io("t.site").is_none(), "hit 1 must not fire");
        assert!(inject_io("t.site").is_some(), "hit 2 must fire");
        assert!(inject_io("t.site").is_none(), "hit 3 must not fire");
        let first: Vec<bool> = (0..64).map(|_| inject_io("t.prob").is_some()).collect();
        // Reinstall: counters and RNG streams reset, sequence repeats.
        install(&plan);
        assert!(inject_io("t.site").is_none());
        assert!(inject_io("t.site").is_some());
        assert!(inject_io("t.site").is_none());
        let second: Vec<bool> = (0..64).map(|_| inject_io("t.prob").is_some()).collect();
        assert_eq!(first, second, "probability schedule must be reproducible");
        assert!(first.iter().any(|&b| b), "p=0.3 over 64 hits should fire");
        clear();
        assert!(inject_io("t.site").is_none());
        assert!(!enabled());
    }

    #[test]
    fn disabled_framework_injects_nothing() {
        let _guard = serial();
        clear();
        for _ in 0..16 {
            assert!(inject_io("wire.read").is_none());
            assert!(inject_write("snapshot.write").is_none());
            maybe_panic("worker.batch"); // must not panic
        }
    }
}

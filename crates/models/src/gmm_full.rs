//! Gaussian mixture with **full covariance** — the naive model the paper
//! argues against in §4 ("a naive invocation of GMM on our affinity matrix A
//! is problematic") and the `GMM` baseline column of Table 1.
//!
//! Log-densities are evaluated through a Cholesky factorization of each
//! covariance; a ridge (shrinkage toward the diagonal) keeps factorization
//! feasible when features outnumber samples — exactly the high-dimensional
//! failure mode the paper describes (citing [7, 30]).

use crate::em::{
    e_step_from_log_joint, hard_labels, relative_improvement, update_weights, EmOptions, FitStats,
};
use crate::kmeans::KMeans;
use crate::{ModelError, Result};
use goggles_tensor::{cholesky, solve_lower_triangular, Matrix};

const LOG_TAU: f64 = 1.837_877_066_409_345_5; // ln(2π)

/// Fitted full-covariance Gaussian mixture.
#[derive(Debug, Clone)]
pub struct FullGmm {
    /// Mixture weights π_k.
    pub weights: Vec<f64>,
    /// Component means, `k × d`.
    pub means: Matrix<f64>,
    /// Cholesky factors `L_k` of each component covariance (`Σ_k = L Lᵀ`).
    pub chol_factors: Vec<Matrix<f64>>,
    /// Posterior responsibilities on the training data, `n × k`.
    pub responsibilities: Matrix<f64>,
    /// Fit diagnostics.
    pub stats: FitStats,
    /// Ridge actually used (may exceed the requested floor if the base
    /// covariance was badly conditioned).
    pub ridge: f64,
}

impl FullGmm {
    /// Fit a `k`-component full-covariance GMM with EM.
    pub fn fit(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(ModelError::EmptyInput);
        }
        if k == 0 {
            return Err(ModelError::InvalidParameter("k must be ≥ 1".into()));
        }
        if data.rows() < k {
            return Err(ModelError::TooFewSamples { samples: data.rows(), components: k });
        }
        let mut best: Option<FullGmm> = None;
        for r in 0..opts.restarts.max(1) {
            let rs = seed.wrapping_add((r as u64).wrapping_mul(0xD1B5_4A32_D192_ED03));
            match Self::fit_once(data, k, opts, rs) {
                Ok(fit) => {
                    if best
                        .as_ref()
                        .is_none_or(|b| fit.stats.log_likelihood > b.stats.log_likelihood)
                    {
                        best = Some(fit);
                    }
                }
                Err(_) if best.is_some() => {} // another restart already succeeded
                Err(e) if r + 1 == opts.restarts.max(1) && best.is_none() => return Err(e),
                Err(_) => {}
            }
        }
        best.ok_or_else(|| ModelError::Numerical("all restarts failed".into()))
    }

    fn fit_once(data: &Matrix<f64>, k: usize, opts: &EmOptions, seed: u64) -> Result<Self> {
        let n = data.rows();
        let d = data.cols();
        let km = KMeans::fit(data, k, 1, seed)?;
        let mut resp = Matrix::<f64>::zeros(n, k);
        for (i, &lbl) in km.labels.iter().enumerate() {
            resp[(i, lbl)] = 1.0;
        }
        let mut weights = vec![1.0 / k as f64; k];
        let mut means = Matrix::<f64>::zeros(k, d);
        let mut ridge_used = opts.var_floor;
        let mut chols = m_step_full(data, &resp, &mut weights, &mut means, opts, &mut ridge_used)?;

        let mut log_joint = Matrix::<f64>::zeros(n, k);
        let mut prev_ll = f64::NEG_INFINITY;
        let mut ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut converged = false;
        for it in 0..opts.max_iters {
            iterations = it + 1;
            fill_log_joint_full(data, &weights, &means, &chols, &mut log_joint);
            ll = e_step_from_log_joint(&log_joint, &mut resp);
            if !ll.is_finite() {
                return Err(ModelError::Numerical(format!("log-likelihood became {ll}")));
            }
            if relative_improvement(prev_ll, ll) < opts.tol {
                converged = true;
                break;
            }
            prev_ll = ll;
            chols = m_step_full(data, &resp, &mut weights, &mut means, opts, &mut ridge_used)?;
        }
        Ok(Self {
            weights,
            means,
            chol_factors: chols,
            responsibilities: resp,
            stats: FitStats { log_likelihood: ll, iterations, converged },
            ridge: ridge_used,
        })
    }

    /// Posterior class probabilities for new rows.
    pub fn predict_proba(&self, data: &Matrix<f64>) -> Matrix<f64> {
        let n = data.rows();
        let k = self.weights.len();
        let mut log_joint = Matrix::<f64>::zeros(n, k);
        fill_log_joint_full(data, &self.weights, &self.means, &self.chol_factors, &mut log_joint);
        let mut resp = Matrix::<f64>::zeros(n, k);
        let _ = e_step_from_log_joint(&log_joint, &mut resp);
        resp
    }

    /// Hard labels on the training data.
    pub fn train_labels(&self) -> Vec<usize> {
        hard_labels(&self.responsibilities)
    }

    /// Number of free parameters: `K(d(d+1)/2 + d + 1) - 1` — the count the
    /// paper contrasts against the hierarchical model's `2αKN + αK` (§4.1).
    // goggles-lint: allow(dead-pub): BIC/model-selection statistic the paper reports; exercised only by unit tests
    pub fn n_parameters(&self) -> usize {
        let k = self.weights.len();
        let d = self.means.cols();
        k * (d * (d + 1) / 2 + d + 1) - 1
    }
}

/// Full-covariance M-step; returns the per-component Cholesky factors.
/// Escalates the ridge (×10 up to 1e3× the floor) until factorization
/// succeeds, recording the final value in `ridge_used`.
fn m_step_full(
    data: &Matrix<f64>,
    resp: &Matrix<f64>,
    weights: &mut [f64],
    means: &mut Matrix<f64>,
    opts: &EmOptions,
    ridge_used: &mut f64,
) -> Result<Vec<Matrix<f64>>> {
    let d = data.cols();
    let k = weights.len();
    let (w, nk) = update_weights(resp);
    weights.copy_from_slice(&w);
    for c in 0..k {
        means.row_mut(c).fill(0.0);
    }
    for (i, row) in data.rows_iter().enumerate() {
        for c in 0..k {
            let g = resp[(i, c)];
            if g == 0.0 {
                continue;
            }
            for (m, &x) in means.row_mut(c).iter_mut().zip(row) {
                *m += g * x;
            }
        }
    }
    for c in 0..k {
        let inv = 1.0 / nk[c].max(1e-12);
        for m in means.row_mut(c) {
            *m *= inv;
        }
    }
    let mut chols = Vec::with_capacity(k);
    for c in 0..k {
        let mut cov = Matrix::<f64>::zeros(d, d);
        let mu = means.row(c).to_vec();
        for (i, row) in data.rows_iter().enumerate() {
            let g = resp[(i, c)];
            if g == 0.0 {
                continue;
            }
            for a in 0..d {
                let da = row[a] - mu[a];
                if da == 0.0 {
                    continue;
                }
                for b in a..d {
                    cov[(a, b)] += g * da * (row[b] - mu[b]);
                }
            }
        }
        let inv = 1.0 / nk[c].max(1e-12);
        for a in 0..d {
            for b in a..d {
                let v = cov[(a, b)] * inv;
                cov[(a, b)] = v;
                cov[(b, a)] = v;
            }
        }
        // Ridge escalation until positive definite.
        let mut ridge = (*ridge_used).max(opts.var_floor);
        let chol = loop {
            let mut reg = cov.clone();
            for a in 0..d {
                reg[(a, a)] += ridge;
            }
            match cholesky(&reg) {
                Ok(l) => break l,
                Err(_) if ridge < opts.var_floor * 1e6 => ridge *= 10.0,
                Err(e) => {
                    return Err(ModelError::Numerical(format!(
                        "covariance of component {c} not PD even with ridge {ridge:.1e}: {e}"
                    )))
                }
            }
        };
        *ridge_used = ridge.max(*ridge_used);
        chols.push(chol);
    }
    Ok(chols)
}

/// `log_joint[i,c] = log π_c + log N(x_i | μ_c, Σ_c)` via Cholesky solves.
fn fill_log_joint_full(
    data: &Matrix<f64>,
    weights: &[f64],
    means: &Matrix<f64>,
    chols: &[Matrix<f64>],
    out: &mut Matrix<f64>,
) {
    let d = data.cols();
    let k = weights.len();
    // log-normalizer: log π - ½ d ln 2π - Σ ln L_ii
    let mut log_norm = vec![0.0f64; k];
    for c in 0..k {
        let log_det_half: f64 = (0..d).map(|i| chols[c][(i, i)].ln()).sum();
        log_norm[c] = weights[c].ln() - 0.5 * d as f64 * LOG_TAU - log_det_half;
    }
    let mut diff = vec![0.0f64; d];
    for (i, row) in data.rows_iter().enumerate() {
        for c in 0..k {
            let mu = means.row(c);
            for ((dst, &x), &m) in diff.iter_mut().zip(row).zip(mu) {
                *dst = x - m;
            }
            let z = solve_lower_triangular(&chols[c], &diff);
            let maha: f64 = z.iter().map(|v| v * v).sum();
            out[(i, c)] = log_norm[c] - 0.5 * maha;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goggles_tensor::rng::{normal, std_rng};

    /// Two correlated Gaussian blobs (diagonal GMM would model them less
    /// faithfully; full GMM should recover the correlation).
    fn correlated_blobs(n_per: usize, seed: u64) -> (Matrix<f64>, Vec<usize>) {
        let mut rng = std_rng(seed);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (center, lbl) in [(-3.0f64, 0usize), (3.0, 1)] {
            for _ in 0..n_per {
                let a = normal(&mut rng);
                let b = normal(&mut rng);
                // strong correlation: y ≈ x
                rows.push([center + a, center + 0.9 * a + 0.3 * b]);
                truth.push(lbl);
            }
        }
        (Matrix::from_fn(rows.len(), 2, |i, j| rows[i][j]), truth)
    }

    fn binary_accuracy(labels: &[usize], truth: &[usize]) -> f64 {
        let same =
            labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
        same.max(1.0 - same)
    }

    #[test]
    fn separates_correlated_blobs() {
        let (data, truth) = correlated_blobs(80, 1);
        let gmm = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(binary_accuracy(&gmm.train_labels(), &truth) > 0.98);
    }

    #[test]
    fn covariance_captures_correlation() {
        let (data, _) = correlated_blobs(400, 2);
        let gmm = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        for c in 0..2 {
            let l = &gmm.chol_factors[c];
            // Σ = L Lᵀ; off-diagonal Σ_01 should be strongly positive (~0.9)
            let cov01 = l[(1, 0)] * l[(0, 0)];
            assert!(cov01 > 0.5, "component {c} cov01 = {cov01}");
        }
    }

    #[test]
    fn full_beats_diagonal_likelihood_on_correlated_data() {
        let (data, _) = correlated_blobs(150, 3);
        let full = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        let diag = crate::DiagonalGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(
            full.stats.log_likelihood > diag.stats.log_likelihood,
            "full {} ≤ diag {}",
            full.stats.log_likelihood,
            diag.stats.log_likelihood
        );
    }

    #[test]
    fn survives_high_dimensional_degenerate_input() {
        // d > n: the regime the paper says breaks naive GMM. The ridge must
        // keep the fit alive (even if the model is meaningless).
        let data = Matrix::from_fn(10, 30, |i, j| ((i * 31 + j * 7) % 13) as f64 / 13.0);
        let gmm = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        assert!(gmm.stats.log_likelihood.is_finite());
        assert!(gmm.ridge >= 1e-6);
    }

    #[test]
    fn predict_proba_rows_normalized() {
        let (data, _) = correlated_blobs(50, 4);
        let gmm = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        let p = gmm.predict_proba(&data);
        for i in 0..p.rows() {
            assert!((p.row(i).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn parameter_count_is_quadratic_in_d() {
        let (data, _) = correlated_blobs(50, 5);
        let gmm = FullGmm::fit(&data, 2, &EmOptions::default(), 0).unwrap();
        // K=2, d=2: 2*(3 + 2 + 1) - 1 = 11
        assert_eq!(gmm.n_parameters(), 11);
    }

    #[test]
    fn deterministic_per_seed() {
        let (data, _) = correlated_blobs(60, 6);
        let a = FullGmm::fit(&data, 2, &EmOptions::default(), 3).unwrap();
        let b = FullGmm::fit(&data, 2, &EmOptions::default(), 3).unwrap();
        assert_eq!(a.train_labels(), b.train_labels());
    }
}

//! Property tests (vendored proptest shim) of the im2col + blocked-GEMM
//! convolution path — the embedding hot path. The GEMM-lowered convolution
//! must agree with the retained scalar reference (`Conv2d::forward_naive`)
//! within 1e-5 on random shapes and channel widths, and the whole trunk
//! (`Vgg16::forward_pool_taps_into`) must be bit-deterministic across
//! scratch-arena reuse, arena history, and thread counts.

use goggles_cnn::{Conv2d, ConvScratch, Vgg16, VggConfig};
use goggles_tensor::rng::{normal, std_rng};
use goggles_tensor::Tensor3;
use goggles_vision::{draw, Image};
use proptest::prelude::*;

/// Deterministic random tensor with values in roughly ±3.
fn random_tensor(c: usize, h: usize, w: usize, seed: u64) -> Tensor3<f32> {
    let mut rng = std_rng(seed);
    Tensor3::from_vec(c, h, w, (0..c * h * w).map(|_| normal(&mut rng) as f32).collect())
        .expect("shape")
}

fn textured_image(shift: f32) -> Image {
    let mut img = Image::filled(3, 32, 32, 0.4);
    draw::fill_disc(&mut img, 10.0 + shift, 12.0, 6.0, &[0.9, 0.2, 0.1]);
    draw::fill_rect(&mut img, 20, 4, 28, 30, &[0.1, 0.6, 0.9]);
    img
}

fn tap_bits(taps: &[Tensor3<f32>]) -> Vec<u32> {
    taps.iter().flat_map(|t| t.as_slice().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// im2col+GEMM convolution ≡ scalar reference within 1e-5 on random
    /// shapes and channel widths (3×3 kernels, the backbone case).
    #[test]
    fn gemm_conv_matches_naive_3x3(
        in_c in 1usize..9,
        out_c in 1usize..12,
        h in 1usize..12,
        w in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let mut rng = std_rng(seed);
        let conv = Conv2d::new_he_init(&mut rng, in_c, out_c, 3);
        let input = random_tensor(in_c, h, w, seed ^ 0xC04);
        let fast = conv.forward(&input);
        let naive = conv.forward_naive(&input);
        prop_assert_eq!(fast.shape(), naive.shape());
        for (i, (a, b)) in fast.as_slice().iter().zip(naive.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-5,
                "in_c={in_c} out_c={out_c} {h}x{w} i={i}: gemm {a} vs naive {b}"
            );
        }
    }

    /// The 1×1 kernel shortcut (direct GEMM, no lowering) also matches.
    #[test]
    fn gemm_conv_matches_naive_1x1(
        in_c in 1usize..10,
        out_c in 1usize..10,
        h in 1usize..10,
        w in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = std_rng(seed);
        let conv = Conv2d::new_he_init(&mut rng, in_c, out_c, 1);
        let input = random_tensor(in_c, h, w, seed ^ 0x1A1);
        let fast = conv.forward(&input);
        let naive = conv.forward_naive(&input);
        for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    /// `forward_into` with a reused, history-laden arena is bit-identical
    /// to a fresh-arena run — no scratch byte leaks into the output.
    #[test]
    fn arena_reuse_is_bit_identical_per_layer(
        in_c in 1usize..6,
        out_c in 1usize..8,
        h in 2usize..10,
        w in 2usize..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = std_rng(seed);
        let conv = Conv2d::new_he_init(&mut rng, in_c, out_c, 3);
        let input = random_tensor(in_c, h, w, seed ^ 0xA2E);
        // Dirty the arena on an unrelated, larger problem first.
        let mut arena = ConvScratch::new();
        let big = Conv2d::new_he_init(&mut rng, 7, 9, 3);
        let big_in = random_tensor(7, 13, 13, seed ^ 0xB16);
        let mut sink = vec![0.0f32; 9 * 13 * 13];
        big.forward_into(big_in.as_slice(), 13, 13, &mut arena, true, &mut sink);

        let mut reused = vec![0.0f32; out_c * h * w];
        conv.forward_into(input.as_slice(), h, w, &mut arena, true, &mut reused);
        let mut fresh = vec![0.0f32; out_c * h * w];
        conv.forward_into(input.as_slice(), h, w, &mut ConvScratch::new(), true, &mut fresh);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&reused), bits(&fresh));
    }
}

#[test]
fn trunk_is_bit_deterministic_across_arena_reuse() {
    let net = Vgg16::new(&VggConfig::tiny(), 7);
    let images: Vec<Image> = (0..3).map(|i| textured_image(i as f32)).collect();
    // Reference: throwaway arena per call (what `forward_pool_taps` does).
    let reference: Vec<Vec<u32>> =
        images.iter().map(|i| tap_bits(&net.forward_pool_taps(i))).collect();
    // One arena reused across all images, twice over.
    let mut arena = ConvScratch::new();
    for _round in 0..2 {
        for (img, expect) in images.iter().zip(&reference) {
            let taps = net.forward_pool_taps_into(&mut arena, img);
            assert_eq!(&tap_bits(&taps), expect, "arena reuse changed trunk bits");
        }
    }
}

#[test]
fn trunk_agrees_with_naive_reference_within_tolerance() {
    let net = Vgg16::new(&VggConfig::tiny(), 11);
    for i in 0..3 {
        let img = textured_image(i as f32);
        let fast = net.forward_pool_taps(&img);
        let naive = net.forward_pool_taps_naive(&img);
        assert_eq!(fast.len(), naive.len());
        for (b, (f, n)) in fast.iter().zip(&naive).enumerate() {
            assert_eq!(f.shape(), n.shape());
            for (a, r) in f.as_slice().iter().zip(n.as_slice()) {
                assert!((a - r).abs() < 1e-5, "block {b}: {a} vs {r}");
            }
        }
    }
}

#[test]
fn logits_batch_is_identical_for_every_thread_count() {
    let net = Vgg16::new(&VggConfig::tiny(), 3);
    let images: Vec<Image> = (0..6).map(|i| textured_image(i as f32 * 0.7)).collect();
    let serial = net.logits_batch_threaded(&images, 1);
    for threads in [2usize, 3, 4, 8] {
        let parallel = net.logits_batch_threaded(&images, threads);
        assert_eq!(
            serial.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "threads = {threads}"
        );
    }
    // And the auto-budget convenience wrapper agrees too.
    let auto = net.logits_batch(&images);
    assert_eq!(auto.as_slice(), serial.as_slice());
}

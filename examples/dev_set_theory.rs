//! How many labels do you actually need? Reproduces the §4.4 analysis:
//! the Theorem-1 lower bound on the probability that the dev set picks the
//! correct cluster→class mapping (Figure 7), its empirical counterpart on a
//! real pipeline run (Figure 8's mechanism), and the DP-vs-brute-force
//! cross-check.
//!
//! ```text
//! cargo run --release --example dev_set_theory
//! ```

use goggles::core::mapping::{apply_mapping, map_clusters_via_dev_set};
use goggles::core::theory;
use goggles::prelude::*;

fn main() {
    // --- the theory curve (Figure 7) ---
    println!("Theorem 1 lower bound, K = 2:");
    println!("{:>4} {:>6}  {:>8} {:>8} {:>8}", "d", "total", "η=0.7", "η=0.8", "η=0.9");
    for d in [1usize, 2, 4, 6, 8, 10, 15, 20, 25] {
        println!(
            "{:>4} {:>6}  {:>8.4} {:>8.4} {:>8.4}",
            d,
            2 * d,
            theory::p_mapping_correct(0.7, 2, d),
            theory::p_mapping_correct(0.8, 2, d),
            theory::p_mapping_correct(0.9, 2, d),
        );
    }
    let (d_star, m_star) = theory::min_dev_set_size(0.8, 2, 0.95, 100).expect("bound reachable");
    println!("\nη = 0.8 needs d* = {d_star} per class (m* = {m_star} total) for P ≥ 0.95");
    println!("(the paper: \"when η = 0.8, only about 20 examples are required\")");

    // DP vs exhaustive enumeration — the §4.4 complexity claim, verified.
    let dp = theory::p_class_correct(0.8, 3, 6);
    let brute = theory::p_class_correct_brute_force(0.8, 3, 6);
    println!(
        "\nDP {dp:.10} vs brute force {brute:.10} (K=3, d=6) — agree: {}",
        (dp - brute).abs() < 1e-9
    );

    // --- empirical counterpart on a real pipeline (Figure 8 mechanism) ---
    println!("\nempirical mapping success on a CUB task (100 dev resamples per size):");
    let task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 24, 4, 3);
    let dataset = generate(&task);
    let goggles = Goggles::new(GogglesConfig::fast());
    let affinity = goggles.build_affinity_matrix(&dataset.train_images());
    // Fit once (unsupervised), then resample dev sets of each size.
    let (_, _, model) =
        goggles.infer_from_affinity(&affinity, &DevSet::empty()).expect("unsupervised fit");
    let truth = dataset.train_labels();
    // The "correct" mapping is whichever maximizes accuracy.
    let acc_of = |g: &[usize]| {
        let mapped = apply_mapping(&model.responsibilities, g);
        let hard: Vec<usize> = (0..mapped.rows())
            .map(|i| if mapped[(i, 0)] >= mapped[(i, 1)] { 0 } else { 1 })
            .collect();
        hard.iter().zip(&truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    };
    let correct_mapping = if acc_of(&[0, 1]) >= acc_of(&[1, 0]) { vec![0, 1] } else { vec![1, 0] };
    let eta = acc_of(&correct_mapping);
    println!("cluster quality η = {:.3}", eta);
    println!("{:>4} {:>10} {:>10}", "d", "empirical", "theory");
    for d in [1usize, 2, 3, 5] {
        let mut hits = 0;
        for rep in 0..100u64 {
            let dev = dataset.sample_dev_set(d, 1000 + rep);
            let rows = DevSet {
                indices: dev
                    .indices
                    .iter()
                    .map(|&i| dataset.train_indices.iter().position(|&t| t == i).unwrap())
                    .collect(),
                labels: dev.labels.clone(),
            };
            if map_clusters_via_dev_set(&model.responsibilities, &rows) == correct_mapping {
                hits += 1;
            }
        }
        let bound = theory::p_mapping_correct(eta.clamp(0.5001, 0.9999), 2, d);
        println!("{:>4} {:>10.2} {:>10.4}", d, hits as f64 / 100.0, bound);
    }
    println!("\nempirical success should dominate the (loose) lower bound — as §4.4 predicts.");
}

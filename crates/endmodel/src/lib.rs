//! # goggles-endmodel
//!
//! Downstream ("end") models for the Table 2 experiments. The paper's
//! protocol (§5.1.4, §5.5): freeze the VGG-16 convolutional trunk, train
//! only fully-connected head layers — with the probabilistic labels emitted
//! by each labeling system as supervision, minimizing the **expected**
//! cross-entropy `E_{y∼ỹ}[ℓ(h(x), y)]` from §2.1 of the paper.
//!
//! * [`adam`] — the Adam optimizer (the paper trains "with the Adam
//!   optimizer with a learning rate of 10⁻³"),
//! * [`head`] — softmax-regression and one-hidden-layer MLP heads over
//!   frozen backbone features, trained on probabilistic labels,
//! * [`fsl`] — the few-shot Baseline++ comparison (Chen et al., ICLR 2019):
//!   a cosine-similarity classifier fit on only the development set,
//! * [`evaluate`] — feature standardization and the shared train/test
//!   protocol.

pub mod adam;
pub mod evaluate;
pub mod fsl;
pub mod head;

pub use adam::Adam;
pub use evaluate::{accuracy, one_hot_labels, standardize_fit, Standardizer};
pub use fsl::{CosineClassifier, LinearFewShot};
pub use head::{MlpHead, SoftmaxHead, TrainConfig};

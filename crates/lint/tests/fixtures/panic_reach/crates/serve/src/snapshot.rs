//! Fixture: non-hot helpers — the panic itself is legal here, but hot-path
//! reachability is not.

pub(crate) fn load_header(xs: &[u8]) -> u8 {
    parse_magic(xs)
}

fn parse_magic(xs: &[u8]) -> u8 {
    xs.first().copied().unwrap()
}

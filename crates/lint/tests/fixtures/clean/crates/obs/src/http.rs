//! Fixture: relaxed orderings are always fine.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

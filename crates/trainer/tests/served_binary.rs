//! End-to-end test of the actual `goggles-served` binary: spawn it on an
//! ephemeral loopback port with a snapshot written to disk, label a batch
//! through [`RemoteLabeler`], assert bit-exact agreement with in-process
//! inference, and verify the wire shutdown op produces a clean exit.

use goggles_core::GogglesConfig;
use goggles_datasets::{generate, TaskConfig, TaskKind};
use goggles_serve::{FittedLabeler, Labeler, RemoteLabeler};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kill the child on drop so a failing assert never leaks a server process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn served_binary_speaks_the_wire_protocol_and_shuts_down_cleanly() {
    // --- fixture: fit, snapshot to disk ------------------------------
    let seed = 91u64;
    let mut task = TaskConfig::new(TaskKind::Cub { class_a: 0, class_b: 1 }, 8, 6, seed);
    task.image_size = 32;
    let ds = generate(&task);
    let dev = ds.sample_dev_set(3, seed);
    let config = GogglesConfig { seed, ..GogglesConfig::fast() };
    let (labeler, _) = FittedLabeler::fit(&config, &ds, &dev).expect("fixture fit");
    let dir = std::env::temp_dir().join("goggles_served_binary_test");
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("snapshot.ggl");
    labeler.save_to(&snap_path).unwrap();

    // --- spawn the real binary on an ephemeral port ------------------
    let child = Command::new(env!("CARGO_BIN_EXE_goggles-served"))
        .args([
            "--snapshot",
            snap_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--conn-threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn goggles-served");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("piped stdout");

    // The first two stdout lines carry the resolved wire and metrics
    // addresses; read them with a timeout guard so a broken server fails
    // the test instead of hanging.
    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        for _ in 0..2 {
            let _ = addr_tx.send(lines.next().and_then(Result::ok).unwrap_or_default());
        }
        // Drain the rest so the child never blocks on a full pipe.
        for _ in lines.by_ref() {}
    });
    let banner =
        addr_rx.recv_timeout(Duration::from_secs(120)).expect("server never printed its address");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    let metrics_banner = addr_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server never printed its metrics address");
    let metrics_addr = metrics_banner
        .strip_prefix("metrics listening on ")
        .unwrap_or_else(|| panic!("unexpected metrics banner {metrics_banner:?}"))
        .to_string();

    // --- label a batch remotely, compare with in-process answers -----
    let client = RemoteLabeler::connect(addr.as_str()).expect("connect to served binary");
    let images = ds.test_images();
    let responses = client.label_all(&images).expect("remote labeling");
    for (i, (resp, img)) in responses.iter().zip(&images).enumerate() {
        let (expected_label, expected_probs) = labeler.label_one(img);
        assert_eq!(resp.label, expected_label, "image {i}");
        assert_eq!(resp.probs, expected_probs, "image {i}: must be bit-identical");
        assert_eq!(resp.version, 1, "image {i}");
    }
    let stats = client.stats().expect("remote stats");
    assert_eq!(stats.stats.requests, images.len() as u64);
    assert_eq!(stats.version, 1);

    // --- scrape the HTTP metrics front -------------------------------
    let body = http_get_metrics(&metrics_addr);
    for family in ["goggles_requests_total", "goggles_stage_latency_us", "goggles_snapshot_version"]
    {
        assert!(body.contains(&format!("# TYPE {family}")), "scrape missing {family}:\n{body}");
    }
    assert!(
        body.lines().any(|l| l.starts_with("goggles_snapshot_version ")
            && l.split_whitespace().nth(1) == Some("1")),
        "snapshot version gauge wrong:\n{body}"
    );
    let served: u64 = body
        .lines()
        .filter(|l| l.starts_with("goggles_requests_total{"))
        .filter_map(|l| l.split_whitespace().last()?.parse::<u64>().ok())
        .sum();
    assert_eq!(served, images.len() as u64, "scraped request count:\n{body}");

    // --- clean shutdown over the wire --------------------------------
    client.shutdown_server().expect("shutdown op");
    drop(client);
    let status = wait_with_timeout(&mut child.0, Duration::from_secs(60))
        .expect("server did not exit after the shutdown op");
    assert!(status.success(), "server exited with {status:?}");
    reader.join().expect("stdout reader");
    std::fs::remove_file(&snap_path).ok();
}

/// The binary's `/healthz` readiness front must flip from `200 ready` to
/// `503 draining` the moment the wire shutdown op lands, and the process
/// must still exit cleanly once the drain grace window elapses.
#[test]
fn served_binary_healthz_flips_during_drain() {
    let child = Command::new(env!("CARGO_BIN_EXE_goggles-served"))
        .args([
            "--demo-fit",
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--conn-threads",
            "2",
            // A generous grace window so the draining state is observable
            // from outside before the process exits.
            "--drain-grace-ms",
            "2000",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn goggles-served");
    let mut child = Reaper(child);
    let stdout = child.0.stdout.take().expect("piped stdout");

    let (addr_tx, addr_rx) = std::sync::mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stdout).lines();
        for _ in 0..2 {
            let _ = addr_tx.send(lines.next().and_then(Result::ok).unwrap_or_default());
        }
        for _ in lines.by_ref() {}
    });
    let banner =
        addr_rx.recv_timeout(Duration::from_secs(120)).expect("server never printed its address");
    let addr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();
    let metrics_banner = addr_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("server never printed its metrics address");
    let metrics_addr = metrics_banner
        .strip_prefix("metrics listening on ")
        .unwrap_or_else(|| panic!("unexpected metrics banner {metrics_banner:?}"))
        .to_string();

    // Before the drain: ready.
    let (head, body) = http_get(&metrics_addr, "/healthz");
    assert!(head.starts_with("HTTP/1.0 200"), "pre-drain healthz: {head}");
    assert_eq!(body, "ready\n");

    // Kick off the drain over the wire, then watch the probe flip. The
    // flag flips before the grace window starts, so polling right after
    // the shutdown ack must observe 503 well before the process exits.
    let client = RemoteLabeler::connect(addr.as_str()).expect("connect to served binary");
    client.shutdown_server().expect("shutdown op");
    drop(client);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let (head, body) = http_get(&metrics_addr, "/healthz");
        if head.starts_with("HTTP/1.0 503") {
            assert_eq!(body, "draining\n");
            break;
        }
        assert!(std::time::Instant::now() < deadline, "healthz never flipped to draining");
        std::thread::sleep(Duration::from_millis(20));
    }

    let status = wait_with_timeout(&mut child.0, Duration::from_secs(60))
        .expect("server did not exit after the drain");
    assert!(status.success(), "server exited with {status:?}");
    reader.join().expect("stdout reader");
}

/// Raw HTTP/1.0 `GET /metrics` against the binary's scrape endpoint; the
/// headers are skipped and the body returned.
fn http_get_metrics(addr: &str) -> String {
    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.0 200"), "scrape failed: {head}");
    body
}

/// Raw HTTP/1.0 GET returning `(head, body)` without asserting a status,
/// so probes can watch for expected non-200 answers (`503 draining`).
fn http_get(addr: &str, path: &str) -> (String, String) {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to HTTP endpoint");
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("malformed HTTP response");
    (head.to_string(), body.to_string())
}

/// `Child::wait` with a crude polling timeout (std has no native one).
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> Option<std::process::ExitStatus> {
    let start = std::time::Instant::now();
    loop {
        if let Ok(Some(status)) = child.try_wait() {
            return Some(status);
        }
        if start.elapsed() > timeout {
            return None;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

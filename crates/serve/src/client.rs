//! [`RemoteLabeler`]: the `TcpStream` client of the wire protocol.
//!
//! One connection, any number of requests in flight: `submit` writes a
//! frame and returns immediately with a [`Ticket`]; a background reader
//! thread demultiplexes replies to their tickets by request id. The
//! blocking [`Labeler::label_all`] therefore *pipelines* — every request is
//! on the wire before the first reply is awaited, so a batch pays one
//! round trip of latency, not one per image, and the server's micro-batcher
//! sees the whole burst at once.
//!
//! Beyond labeling, the client drives the serving control plane remotely:
//! [`RemoteLabeler::stats`] (full counter snapshot + current version),
//! [`RemoteLabeler::reload`] (hot-swap a server-side snapshot file behind
//! live traffic) and [`RemoteLabeler::shutdown_server`].
//!
//! ## Resilience: [`RetryPolicy`]
//!
//! Connected with [`RemoteLabeler::connect_with`], the client retries
//! **idempotent blocking operations** (`label`, `label_all` items, `stats`,
//! `metrics`) on retryable errors ([`ServeError::retryable`]: `Overloaded`,
//! `Io`, `Closed`) with capped exponential backoff plus seeded jitter, and
//! transparently **reconnects** when the connection died — the failed
//! request is replayed on the fresh connection. Non-idempotent operations
//! (`reload`, `shutdown_server`) and the raw ticket-based `submit` are
//! never retried. [`RemoteLabeler::label_with_deadline`] spreads one
//! deadline budget across all attempts: a retry that cannot finish before
//! the deadline is not attempted. Retries and reconnects are counted in
//! the process-global metrics registry (`goggles_retries_total`,
//! `goggles_reconnects_total`).

use crate::api::{Labeler, Ticket};
use crate::service::LabelResponse;
use crate::wire::{
    self, decode_error_reply, decode_ingest_reply, decode_label_reply, decode_metrics_reply,
    decode_reload_reply, decode_stats_reply, encode_ingest_request, encode_label_request,
    encode_reload_request, Frame, Opcode, RemoteStats,
};
use crate::{ServeError, ServeResult};
use goggles_vision::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Retry/reconnect policy for a [`RemoteLabeler`]'s idempotent blocking
/// operations. The default retries twice (three attempts total) with
/// 10 ms → 20 ms capped-exponential backoff and reconnects on dead
/// connections; [`RetryPolicy::none`] restores the fail-fast behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation, the first included. `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry up to
    /// `max_backoff`.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Seed for the jitter RNG (each sleep is scaled by a factor in
    /// `[0.5, 1.0)`), so a retry schedule is reproducible under test.
    pub jitter_seed: u64,
    /// Reconnect (and replay the failed request) when the connection is
    /// dead, instead of failing every subsequent call with
    /// [`ServeError::Closed`].
    pub reconnect: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0,
            reconnect: true,
        }
    }
}

impl RetryPolicy {
    /// No retries, no reconnects — every error surfaces immediately.
    /// What [`RemoteLabeler::connect`] uses.
    pub fn none() -> Self {
        Self { max_attempts: 1, reconnect: false, ..Self::default() }
    }

    /// Backoff before retry number `retry` (1-based): capped exponential,
    /// jittered into `[0.5, 1.0)` of the nominal value.
    fn backoff(&self, retry: u32, jitter: &mut StdRng) -> Duration {
        let nominal = self
            .base_backoff
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.max_backoff);
        nominal.mul_f64(0.5 + 0.5 * jitter.random::<f64>())
    }
}

/// A reply waiter, keyed by request id in [`ClientShared::pending`].
enum Pending {
    Label(mpsc::Sender<ServeResult<LabelResponse>>),
    Stats(mpsc::Sender<ServeResult<RemoteStats>>),
    Metrics(mpsc::Sender<ServeResult<String>>),
    Reload(mpsc::Sender<ServeResult<u64>>),
    Ingest(mpsc::Sender<ServeResult<u64>>),
    Shutdown(mpsc::Sender<ServeResult<()>>),
}

impl Pending {
    /// Resolve this waiter with an error, whatever its reply type.
    fn fail(self, err: ServeError) {
        match self {
            Pending::Label(tx) => drop(tx.send(Err(err))),
            Pending::Stats(tx) => drop(tx.send(Err(err))),
            Pending::Metrics(tx) => drop(tx.send(Err(err))),
            Pending::Reload(tx) => drop(tx.send(Err(err))),
            Pending::Ingest(tx) => drop(tx.send(Err(err))),
            Pending::Shutdown(tx) => drop(tx.send(Err(err))),
        }
    }
}

struct ClientShared {
    /// Write half; frames are written whole under this lock so concurrent
    /// submitters never interleave bytes.
    writer: Mutex<TcpStream>,
    /// In-flight requests awaiting their reply.
    pending: Mutex<HashMap<u64, Pending>>,
    next_id: AtomicU64,
    /// Set once the connection is unusable (peer closed, protocol error).
    closed: AtomicBool,
}

impl ClientShared {
    /// Register a waiter and write its request frame; on a write failure
    /// the waiter is deregistered and the connection marked closed.
    fn send(&self, opcode: Opcode, payload: &[u8], pending: Pending) -> ServeResult<u64> {
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store so the drained map is visible
        if self.closed.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        // Writing an oversized frame would get the whole connection
        // dropped by the server's framing layer (failing every pipelined
        // request with an opaque `Closed`); fail just this request, with a
        // cause, before anything hits the wire.
        if payload.len() > wire::MAX_PAYLOAD_LEN {
            return Err(ServeError::Wire(format!(
                "request payload of {} bytes exceeds the {}-byte frame cap",
                payload.len(),
                wire::MAX_PAYLOAD_LEN
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.pending.lock().unwrap_or_else(PoisonError::into_inner).insert(id, pending);
        let outcome = {
            let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
            // goggles-lint: allow(lock-order): intentional — the writer mutex exists precisely to serialize whole frames onto the shared socket; writing outside it would interleave frame bytes
            wire::write_frame(&mut *writer, opcode, id, payload)
        };
        if let Err(e) = outcome {
            self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&id);
            // goggles-lint: allow(atomics): Release publishes the deregistered waiter before peers see `closed`
            self.closed.store(true, Ordering::Release);
            return Err(e);
        }
        // Re-check after registering: if the reader thread died between the
        // entry check and our insert, it may have already drained `pending`
        // and our waiter would never resolve. Only an entry *still in the
        // map* is unresolvable — a missing one was either dispatched (the
        // reply is on the channel; e.g. a shutdown ack racing the server's
        // close) or drained (the dropped sender resolves the wait to
        // `Closed`). The reader sets `closed` *before* clearing, so one of
        // the paths always fires.
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release; see the ordering argument above
        if self.closed.load(Ordering::Acquire)
            && self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&id).is_some()
        {
            return Err(ServeError::Closed);
        }
        Ok(id)
    }

    /// Route one reply frame to its waiter. Unknown ids are tolerated (the
    /// waiter may have given up); malformed payloads resolve the waiter
    /// with a wire error.
    fn dispatch(&self, frame: Frame) {
        let Some(pending) =
            self.pending.lock().unwrap_or_else(PoisonError::into_inner).remove(&frame.request_id)
        else {
            return;
        };
        match (frame.opcode, pending) {
            (Opcode::ErrorReply, waiter) => {
                let err = decode_error_reply(&frame.payload)
                    .unwrap_or_else(|e| ServeError::Wire(format!("undecodable error reply: {e}")));
                waiter.fail(err);
            }
            (Opcode::LabelReply, Pending::Label(tx)) => {
                let _ = tx.send(decode_label_reply(&frame.payload));
            }
            (Opcode::StatsReply, Pending::Stats(tx)) => {
                let _ = tx.send(decode_stats_reply(&frame.payload));
            }
            (Opcode::MetricsReply, Pending::Metrics(tx)) => {
                let _ = tx.send(decode_metrics_reply(&frame.payload));
            }
            (Opcode::ReloadReply, Pending::Reload(tx)) => {
                let _ = tx.send(decode_reload_reply(&frame.payload));
            }
            (Opcode::IngestReply, Pending::Ingest(tx)) => {
                let _ = tx.send(decode_ingest_reply(&frame.payload));
            }
            (Opcode::ShutdownReply, Pending::Shutdown(tx)) => {
                let _ = tx.send(Ok(()));
            }
            (op, waiter) => {
                waiter.fail(ServeError::Wire(format!("mismatched reply opcode {op:?}")));
            }
        }
    }
}

/// One live TCP connection: the shared write/pending state plus its reader
/// thread. Dropping a `Connection` closes the socket and joins the reader.
struct Connection {
    shared: Arc<ClientShared>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Connection {
    fn open(addrs: &[SocketAddr]) -> ServeResult<Self> {
        let stream = TcpStream::connect(addrs)
            .map_err(|e| ServeError::Io(format!("connecting to server: {e}")))?;
        // Frames are whole messages; latency matters more than packing.
        let _ = stream.set_nodelay(true);
        let mut read_half =
            stream.try_clone().map_err(|e| ServeError::Io(format!("cloning connection: {e}")))?;
        let shared = Arc::new(ClientShared {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("goggles-remote-reader".into())
                .spawn(move || {
                    // Reply pump: demultiplex until the peer closes or the
                    // stream breaks, then fail everything still in flight
                    // (dropping a waiter's sender resolves it to `Closed`).
                    while let Ok(Some(frame)) = wire::read_frame(&mut read_half) {
                        shared.dispatch(frame);
                    }
                    // goggles-lint: allow(atomics): Release orders the flag before the drain, the linchpin of send()'s re-check
                    shared.closed.store(true, Ordering::Release);
                    shared.pending.lock().unwrap_or_else(PoisonError::into_inner).clear();
                })
                .map_err(|e| ServeError::Io(format!("spawning reader thread: {e}")))?
        };
        Ok(Self { shared, reader: Some(reader) })
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        // Closing the socket unblocks the reader thread, which then fails
        // any still-pending waiters before exiting.
        if let Ok(writer) = self.shared.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// A [`Labeler`] on the far side of a TCP connection — the client half of
/// the wire protocol, speaking to a [`crate::WireServer`] (usually the
/// `goggles-served` binary).
pub struct RemoteLabeler {
    /// Resolved endpoint, kept for reconnects.
    addrs: Vec<SocketAddr>,
    policy: RetryPolicy,
    /// The live connection; swapped in place on reconnect. Tickets issued
    /// on an older connection keep their own `Arc` into it and resolve
    /// (with `Closed`) independently.
    conn: Mutex<Connection>,
    jitter: Mutex<StdRng>,
    retries: goggles_obs::Counter,
    reconnects: goggles_obs::Counter,
}

impl RemoteLabeler {
    /// Connect to a serving endpoint (e.g. `"127.0.0.1:7878"`) with the
    /// fail-fast [`RetryPolicy::none`] — errors surface immediately, as
    /// they always did. Use [`RemoteLabeler::connect_with`] for retries.
    pub fn connect(addr: impl ToSocketAddrs) -> ServeResult<Self> {
        Self::connect_with(addr, RetryPolicy::none())
    }

    /// Connect with a [`RetryPolicy`] governing the idempotent blocking
    /// operations (see the [module docs](self)).
    pub fn connect_with(addr: impl ToSocketAddrs, policy: RetryPolicy) -> ServeResult<Self> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServeError::Io(format!("resolving server address: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServeError::Io("server address resolved to nothing".into()));
        }
        let conn = Connection::open(&addrs)?;
        let global = goggles_obs::global();
        Ok(Self {
            addrs,
            jitter: Mutex::new(StdRng::seed_from_u64(policy.jitter_seed)),
            policy,
            conn: Mutex::new(conn),
            retries: global.counter(
                "goggles_retries_total",
                "Remote-labeler operations retried after a retryable error",
                &[],
            ),
            reconnects: global.counter(
                "goggles_reconnects_total",
                "Remote-labeler reconnects after a dead connection",
                &[],
            ),
        })
    }

    /// A usable connection handle: the current one if alive, a fresh one
    /// (reconnect-and-replay) if it died and the policy allows. The
    /// blocking open happens with no lock held; a racing reconnect from
    /// another thread wins gracefully (its connection is used, ours is
    /// discarded).
    fn live_shared(&self) -> ServeResult<Arc<ClientShared>> {
        {
            let conn = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
            // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store (see ClientShared::send)
            if !conn.shared.closed.load(Ordering::Acquire) || !self.policy.reconnect {
                return Ok(Arc::clone(&conn.shared));
            }
        }
        let fresh = Connection::open(&self.addrs)?;
        let shared = Arc::clone(&fresh.shared);
        let mut conn = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store (see ClientShared::send)
        if conn.shared.closed.load(Ordering::Acquire) {
            let stale = std::mem::replace(&mut *conn, fresh);
            drop(conn);
            self.reconnects.inc();
            // The stale connection's reader is already exiting (its socket
            // is dead); dropping joins it outside the conn lock.
            drop(stale);
            Ok(shared)
        } else {
            // Another thread reconnected first; use its connection.
            let current = Arc::clone(&conn.shared);
            drop(conn);
            drop(fresh);
            Ok(current)
        }
    }

    /// Run one idempotent blocking operation under the retry policy:
    /// retryable failures ([`ServeError::retryable`]) back off
    /// (capped-exponential, jittered) and replay — on a fresh connection if
    /// the old one died. A `deadline` bounds the *total* budget: no retry
    /// is attempted that could not finish before it.
    fn with_retry<T>(
        &self,
        deadline: Option<Instant>,
        attempt: impl Fn(&ClientShared) -> ServeResult<T>,
    ) -> ServeResult<T> {
        let mut tries = 0u32;
        loop {
            let outcome = match self.live_shared() {
                Ok(shared) => attempt(&shared),
                Err(e) => Err(e),
            };
            tries += 1;
            match outcome {
                Ok(v) => return Ok(v),
                Err(e) if e.retryable() && tries < self.policy.max_attempts => {
                    let pause = {
                        let mut jitter = self.jitter.lock().unwrap_or_else(PoisonError::into_inner);
                        self.policy.backoff(tries, &mut jitter)
                    };
                    if let Some(d) = deadline {
                        if Instant::now() + pause >= d {
                            return Err(e);
                        }
                    }
                    self.retries.inc();
                    std::thread::sleep(pause);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Full counter snapshot of the remote service, plus the snapshot
    /// version currently serving. Idempotent — retried under the policy.
    pub fn stats(&self) -> ServeResult<RemoteStats> {
        self.with_retry(None, |shared| {
            let (tx, rx) = mpsc::channel();
            shared.send(Opcode::StatsRequest, &[], Pending::Stats(tx))?;
            rx.recv().unwrap_or(Err(ServeError::Closed))
        })
    }

    /// Scrape the remote service's metrics registry: the same Prometheus
    /// text exposition that the server's `GET /metrics` HTTP front renders
    /// ([`crate::LabelService::render_metrics`]), shipped over the wire
    /// protocol instead of HTTP. Idempotent — retried under the policy.
    pub fn metrics(&self) -> ServeResult<String> {
        self.with_retry(None, |shared| {
            let (tx, rx) = mpsc::channel();
            shared.send(Opcode::MetricsRequest, &[], Pending::Metrics(tx))?;
            rx.recv().unwrap_or(Err(ServeError::Closed))
        })
    }

    /// Hot-reload a snapshot file **on the server's filesystem** behind the
    /// running service; returns the published version. In-flight batches
    /// finish on their old version — same semantics as
    /// [`crate::LabelService::reload_from`], driven over the wire. **Not
    /// retried**: a replayed reload would publish (and bump the version)
    /// twice.
    pub fn reload(&self, server_path: &str) -> ServeResult<u64> {
        let (tx, rx) = mpsc::channel();
        self.live_shared()?.send(
            Opcode::ReloadRequest,
            &encode_reload_request(server_path),
            Pending::Reload(tx),
        )?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Submit one image to the server's background trainer (its continuous
    /// -learning intake queue); returns the total number of images the
    /// trainer has accepted so far. Requires the server to have been
    /// started with an ingest sink (`goggles-served --retrain`); otherwise
    /// the server answers with a wire error. **Not retried**: a replayed
    /// ingest would enqueue (and train on) the same image twice.
    pub fn ingest(&self, image: &Image) -> ServeResult<u64> {
        let (tx, rx) = mpsc::channel();
        self.live_shared()?.send(
            Opcode::Ingest,
            &encode_ingest_request(image),
            Pending::Ingest(tx),
        )?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Ask the server to shut down cleanly (stop accepting, drain, exit).
    /// Returns once the server acknowledged. **Not retried.**
    pub fn shutdown_server(&self) -> ServeResult<()> {
        let (tx, rx) = mpsc::channel();
        self.live_shared()?.send(Opcode::ShutdownRequest, &[], Pending::Shutdown(tx))?;
        rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Label one image with a **total** deadline budget spread across all
    /// retry attempts: each attempt ships the remaining budget to the
    /// server, and a backoff that would overrun the deadline fails with the
    /// last error instead of sleeping past it.
    pub fn label_with_deadline(
        &self,
        image: &Image,
        deadline: Instant,
    ) -> ServeResult<LabelResponse> {
        self.with_retry(Some(deadline), |shared| submit_on(shared, image, Some(deadline))?.wait())
    }

    /// Whether the current connection has failed (or the peer closed it).
    /// With `RetryPolicy::reconnect`, the next idempotent operation opens a
    /// fresh connection anyway.
    pub fn is_closed(&self) -> bool {
        let conn = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store (see ClientShared::send)
        conn.shared.closed.load(Ordering::Acquire)
    }

    /// Encode and send one label request straight from a borrowed image —
    /// the wire frame is the only copy made, so the blocking wrappers
    /// below never clone pixel buffers into throwaway `Arc`s. Single
    /// attempt: the ticket is bound to the connection that sent it.
    fn submit_borrowed(&self, image: &Image, deadline: Option<Instant>) -> ServeResult<Ticket> {
        let shared = self.live_shared()?;
        submit_on(&shared, image, deadline)
    }
}

/// Encode and send one label request on a specific connection.
fn submit_on(
    shared: &ClientShared,
    image: &Image,
    deadline: Option<Instant>,
) -> ServeResult<Ticket> {
    let deadline_us = match deadline {
        Some(d) => {
            let now = Instant::now();
            if now >= d {
                return Ok(Ticket::ready(Err(ServeError::Deadline)));
            }
            // max(1): a sub-microsecond budget must still travel as a
            // deadline (0 means "none" on the wire).
            (d - now).as_micros().min(u128::from(u64::MAX)).max(1) as u64
        }
        None => 0,
    };
    let payload = encode_label_request(image, deadline_us);
    let (tx, rx) = mpsc::channel();
    shared.send(Opcode::LabelRequest, &payload, Pending::Label(tx))?;
    Ok(Ticket::pending(rx, None))
}

impl Labeler for RemoteLabeler {
    /// Submission writes one frame and returns immediately; the ticket
    /// resolves when the reply frame arrives. The deadline is shipped as a
    /// *relative* budget (the hosts share no clock) and enforced by the
    /// server's micro-batcher; an already-expired deadline short-circuits
    /// locally without a wire trip. Single attempt — a ticket cannot be
    /// replayed; use the blocking wrappers for retry semantics.
    fn submit_with_deadline(
        &self,
        image: Arc<Image>,
        deadline: Option<Instant>,
    ) -> ServeResult<Ticket> {
        self.submit_borrowed(&image, deadline)
    }

    /// Overrides the default to encode straight from the borrowed image —
    /// no pixel-buffer clone into a throwaway `Arc`. Retried under the
    /// policy (labeling is idempotent).
    fn label(&self, image: &Image) -> ServeResult<LabelResponse> {
        self.with_retry(None, |shared| submit_on(shared, image, None)?.wait())
    }

    /// Overrides the default for the same reason as [`Labeler::label`];
    /// still submits everything before awaiting anything (pipelining).
    /// Items whose first (pipelined) attempt fails with a retryable error
    /// are replayed individually under the policy.
    fn label_all(&self, images: &[&Image]) -> ServeResult<Vec<LabelResponse>> {
        let tickets: ServeResult<Vec<Ticket>> =
            images.iter().map(|img| self.submit_borrowed(img, None)).collect();
        let outcomes: Vec<ServeResult<LabelResponse>> = match tickets {
            Ok(tickets) => tickets.into_iter().map(Ticket::wait).collect(),
            // The pipelined burst could not even be submitted (e.g. dead
            // connection): fall through and let the per-item retry path
            // reconnect and replay everything.
            // goggles-lint: allow(alloc-hot): submit-failure fan-out, runs once per dead connection — not per request
            Err(e) => images.iter().map(|_| Err(e.clone())).collect(),
        };
        outcomes
            .into_iter()
            .zip(images.iter())
            .map(|(outcome, img)| match outcome {
                Err(e) if e.retryable() && self.policy.max_attempts > 1 => self.label(img),
                other => other,
            })
            .collect()
    }
}

impl std::fmt::Debug for RemoteLabeler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let conn = self.conn.lock().unwrap_or_else(PoisonError::into_inner);
        // goggles-lint: allow(atomics): Acquire pairs with the reader's Release store (see ClientShared::send)
        let closed = conn.shared.closed.load(Ordering::Acquire);
        let in_flight = conn.shared.pending.lock().unwrap_or_else(PoisonError::into_inner).len();
        drop(conn);
        f.debug_struct("RemoteLabeler")
            .field("closed", &closed)
            .field("in_flight", &in_flight)
            .field("policy", &self.policy)
            .finish()
    }
}

//! Developer tool: measure GOGGLES labeling accuracy per dataset at a given
//! scale, to calibrate generator difficulty against the paper's Table 1
//! ordering (CUB 97.8 > Surface 89.2 > TB 76.9 > PN 74.4 > GTSRB 70.5).
//!
//! ```text
//! GOGGLES_SCALE=paper cargo run --release --bin calibrate
//! ```
use goggles::experiments::{methods, Scale, TrialContext};

fn main() {
    let params = Scale::from_env().params();
    println!("{params:?}");
    for trial in 0..params.trials {
        for task in params.tasks_for_trial(trial) {
            let ctx = TrialContext::build(&params, &task, trial);
            let truth = ctx.train_truth();
            let mut aucs: Vec<f64> = (0..ctx.affinity.alpha)
                .map(|f| {
                    let x = ctx.affinity.score_distribution(f, &truth).auc;
                    x.max(1.0 - x)
                })
                .collect();
            aucs.sort_by(|a, b| b.total_cmp(a));
            let acc = methods::run_goggles(&ctx).labeling_accuracy(&ctx);
            println!(
                "trial {trial} {:>8}: goggles {:>6.2}% | best-fn AUC {:.3}/{:.3}/{:.3} median {:.3}",
                task.kind.dataset_name(),
                100.0 * acc,
                aucs[0],
                aucs[1],
                aucs[2],
                aucs[aucs.len() / 2]
            );
        }
    }
}

//! Fixture: a non-hot helper whose panic site carries an annotation, so
//! hot-path callers do not inherit its reachability (`panic-reach`).

pub(crate) fn decode_header(xs: &[u8]) -> u8 {
    // goggles-lint: allow(panic-reach): fixture — frame presence is validated before every hot-path call
    xs.first().copied().unwrap()
}

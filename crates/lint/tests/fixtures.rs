//! Fixture-tree tests: each rule is exercised against a miniature workspace
//! under `tests/fixtures/<name>/` whose paths mimic the real layout (rules
//! scope by workspace-relative path), plus the meta-test that the *actual*
//! workspace lints clean and exit-code tests for the CLI binary.

use goggles_lint::{Diagnostic, Workspace};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    Workspace::load(&fixture_root(name)).expect("fixture tree loads").lint()
}

/// `(rule, line)` pairs, in the engine's sorted order.
fn shape(diags: &[Diagnostic]) -> Vec<(&str, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn panic_fixture_flags_unwrap_and_macro() {
    let out = lint_fixture("panic");
    assert_eq!(shape(&out), vec![("panic", 4), ("panic", 6)], "{out:?}");
    assert!(out.iter().all(|d| d.file == "crates/serve/src/service.rs"));
}

#[test]
fn index_fixture_flags_bare_indexing() {
    let out = lint_fixture("index");
    assert_eq!(shape(&out), vec![("index", 4)], "{out:?}");
}

#[test]
fn hash_iter_fixture_flags_hashmap_iteration() {
    let out = lint_fixture("hash_iter");
    assert_eq!(shape(&out), vec![("hash-iter", 9)], "{out:?}");
}

#[test]
fn nan_cmp_fixture_flags_partial_cmp_unwrap() {
    let out = lint_fixture("nan_cmp");
    assert_eq!(shape(&out), vec![("nan-cmp", 4)], "{out:?}");
}

#[test]
fn atomics_fixture_flags_seqcst_everywhere_acquire_on_hot_paths() {
    let out = lint_fixture("atomics");
    assert_eq!(shape(&out), vec![("atomics", 6), ("atomics", 6)], "{out:?}");
    let files: Vec<&str> = out.iter().map(|d| d.file.as_str()).collect();
    assert_eq!(files, vec!["crates/obs/src/http.rs", "crates/serve/src/server.rs"]);
}

#[test]
fn unsafety_fixture_flags_unsafe_without_safety_comment() {
    let out = lint_fixture("unsafety");
    assert_eq!(shape(&out), vec![("unsafe", 4)], "{out:?}");
}

#[test]
fn wire_fixture_flags_missing_decoder_and_dispatch() {
    let out = lint_fixture("wire");
    // Opcode::Stats decodes nowhere and the server never references it; the
    // client speaks both, so exactly two findings, anchored at the enum.
    assert_eq!(shape(&out), vec![("wire", 5), ("wire", 5)], "{out:?}");
    assert!(out.iter().all(|d| d.message.contains("Stats")), "{out:?}");
    assert!(out.iter().any(|d| d.message.contains("from_u8")), "{out:?}");
    assert!(out.iter().any(|d| d.message.contains("server.rs")), "{out:?}");
}

#[test]
fn deps_fixture_flags_version_git_and_subtable_specs() {
    let out = lint_fixture("deps");
    assert_eq!(shape(&out), vec![("deps", 9), ("deps", 10), ("deps", 13)], "{out:?}");
    assert!(out.iter().all(|d| d.file == "Cargo.toml"));
}

#[test]
fn bad_allow_fixture_flags_malformed_annotations() {
    let out = lint_fixture("bad_allow");
    assert_eq!(shape(&out), vec![("bad-allow", 3), ("bad-allow", 6)], "{out:?}");
}

#[test]
fn lock_order_fixture_flags_inversion_reentry_and_blocking() {
    let out = lint_fixture("lock_order");
    assert_eq!(
        shape(&out),
        vec![("lock-order", 14), ("lock-order", 27), ("lock-order", 36)],
        "{out:?}"
    );
    // The inversion carries both witness chains, joined by a marker.
    assert!(out[0].message.contains("inversion between `queue` and `stats`"), "{out:?}");
    assert!(out[0].chain.iter().any(|hop| hop == "— reverse order —"), "{out:?}");
    assert!(out[1].message.contains("re-acquires `stats`"), "{out:?}");
    assert!(out[2].message.contains("blocking `write_all`"), "{out:?}");
}

#[test]
fn panic_reach_fixture_reports_two_hop_chain() {
    let out = lint_fixture("panic_reach");
    assert_eq!(shape(&out), vec![("panic-reach", 7)], "{out:?}");
    let d = &out[0];
    assert!(d.message.contains("`load_header` can transitively panic"), "{}", d.message);
    // Full witness: the intermediate hop and the concrete panic site.
    assert_eq!(d.chain.len(), 2, "{:?}", d.chain);
    assert!(d.chain[0].contains("load_header [calls @ crates/serve/src/snapshot.rs:5]"));
    assert!(d.chain[1].contains("parse_magic [.unwrap() @ crates/serve/src/snapshot.rs:9]"));
    // Text output renders the same chain inline.
    assert!(d.message.contains(" → "), "{}", d.message);
}

#[test]
fn alloc_hot_fixture_flags_per_iteration_allocations() {
    let out = lint_fixture("alloc_hot");
    assert_eq!(shape(&out), vec![("alloc-hot", 6), ("alloc-hot", 8)], "{out:?}");
    assert!(out[0].message.contains("format!"), "{out:?}");
    assert!(out[1].message.contains(".to_vec()"), "{out:?}");
}

#[test]
fn dead_pub_fixture_flags_only_the_unreferenced_item() {
    // `used` is kept alive by the serve crate's reference; `orphan` is not.
    let out = lint_fixture("dead_pub");
    assert_eq!(shape(&out), vec![("dead-pub", 7)], "{out:?}");
    assert!(out[0].message.contains("`orphan`"), "{out:?}");
}

#[test]
fn clean_fixture_lints_clean() {
    // Correct code, allow-annotated escape hatches, and #[cfg(test)] code
    // covering every rule: zero findings.
    let out = lint_fixture("clean");
    assert!(out.is_empty(), "{out:?}");
}

/// The meta-test: the real workspace must satisfy its own invariants.
#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let out = Workspace::load(&root).expect("workspace loads").lint();
    assert!(out.is_empty(), "workspace must lint clean:\n{}", render(&out));
}

fn render(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| format!("{d}\n")).collect()
}

mod cli {
    use super::fixture_root;
    use std::process::Command;

    fn run(args: &[&str]) -> (Option<i32>, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_goggles-lint"))
            .args(args)
            .output()
            .expect("binary runs");
        (out.status.code(), String::from_utf8_lossy(&out.stdout).into_owned())
    }

    #[test]
    fn exit_1_and_diagnostics_on_stdout_for_violations() {
        let root = fixture_root("panic");
        let (code, stdout) = run(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(code, Some(1));
        assert!(stdout.contains("crates/serve/src/service.rs:4: panic:"), "{stdout}");
    }

    #[test]
    fn exit_0_on_clean_tree() {
        let root = fixture_root("clean");
        let (code, stdout) = run(&["--root", root.to_str().expect("utf-8 path")]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(stdout.is_empty(), "clean run prints nothing to stdout: {stdout}");
    }

    #[test]
    fn exit_2_on_bad_usage() {
        let (code, _) = run(&["--frobnicate"]);
        assert_eq!(code, Some(2));
    }

    #[test]
    fn json_format_emits_stable_fields_and_chain() {
        let root = fixture_root("panic_reach");
        let (code, stdout) =
            run(&["--root", root.to_str().expect("utf-8 path"), "--format", "json"]);
        assert_eq!(code, Some(1));
        assert!(stdout.contains("\"violations\": 1"), "{stdout}");
        assert!(stdout.contains("\"rule\": \"panic-reach\""), "{stdout}");
        assert!(stdout.contains("\"path\": \"crates/serve/src/service.rs\""), "{stdout}");
        assert!(stdout.contains("\"line\": 7"), "{stdout}");
        assert!(stdout.contains("\"chain\": [\""), "{stdout}");
    }

    #[test]
    fn json_format_prints_report_even_when_clean() {
        let root = fixture_root("clean");
        let (code, stdout) =
            run(&["--root", root.to_str().expect("utf-8 path"), "--format", "json"]);
        assert_eq!(code, Some(0), "{stdout}");
        assert!(stdout.contains("\"violations\": 0"), "{stdout}");
        assert!(stdout.contains("\"findings\": []"), "{stdout}");
    }
}
